"""Vector network analyzer simulator.

The paper builds its sensor model from wired VNA measurements (section
4.2, Table 1): 2-port sweeps of the sensor while the indenter applies
known forces.  This VNA model measures any S-parameter source with
realistic trace noise and an optional uncalibrated cable delay, and
offers the usual logmag/phase trace formats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.units import SPEED_OF_LIGHT

#: A device under test: maps a frequency grid [Hz] to S-params (K, 2, 2).
DeviceUnderTest = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class VNATrace:
    """One measured S-parameter trace.

    Attributes:
        frequency: Sweep grid [Hz].
        values: Complex S-parameter samples.
    """

    frequency: np.ndarray
    values: np.ndarray

    @property
    def magnitude_db(self) -> np.ndarray:
        """Trace magnitude [dB]."""
        return 20.0 * np.log10(np.maximum(np.abs(self.values), 1e-300))

    @property
    def phase_deg(self) -> np.ndarray:
        """Wrapped phase [deg]."""
        return np.degrees(np.angle(self.values))

    @property
    def unwrapped_phase_deg(self) -> np.ndarray:
        """Unwrapped phase [deg] across the sweep."""
        return np.degrees(np.unwrap(np.angle(self.values)))

    def group_delay(self) -> np.ndarray:
        """Group delay [s] from the phase slope."""
        phase = np.unwrap(np.angle(self.values))
        return -np.gradient(phase, self.frequency) / (2.0 * np.pi)


class VNA:
    """Two-port VNA with trace noise and optional cable delay.

    Attributes:
        start_frequency: Sweep start [Hz].
        stop_frequency: Sweep stop [Hz].
        points: Number of sweep points.
        trace_noise_std: Complex trace noise std-dev (linear units).
        cable_length: Uncalibrated cable length [m] adding linear phase
            to transmission/reflection terms (zero = fully calibrated).
    """

    def __init__(self, start_frequency: float = 10e6,
                 stop_frequency: float = 3e9, points: int = 401,
                 trace_noise_std: float = 1e-3,
                 cable_length: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        if not 0.0 < start_frequency < stop_frequency:
            raise ConfigurationError(
                f"need 0 < start < stop, got {start_frequency}, "
                f"{stop_frequency}"
            )
        if points < 2:
            raise ConfigurationError(f"need at least 2 points, got {points}")
        if trace_noise_std < 0.0:
            raise ConfigurationError(
                f"trace noise std must be non-negative, got {trace_noise_std}"
            )
        if cable_length < 0.0:
            raise ConfigurationError(
                f"cable length must be non-negative, got {cable_length}"
            )
        self.start_frequency = float(start_frequency)
        self.stop_frequency = float(stop_frequency)
        self.points = int(points)
        self.trace_noise_std = float(trace_noise_std)
        self.cable_length = float(cable_length)
        self._rng = rng or np.random.default_rng()

    @property
    def frequency(self) -> np.ndarray:
        """The sweep grid [Hz]."""
        return np.linspace(self.start_frequency, self.stop_frequency,
                           self.points)

    def measure(self, device: DeviceUnderTest) -> np.ndarray:
        """Sweep the DUT; returns noisy S-parameters (points, 2, 2)."""
        frequency = self.frequency
        s = np.array(device(frequency), dtype=complex)
        if s.shape != (self.points, 2, 2):
            raise ConfigurationError(
                f"DUT returned shape {s.shape}, expected "
                f"({self.points}, 2, 2)"
            )
        if self.cable_length > 0.0:
            delay_phase = np.exp(
                -2j * np.pi * frequency * self.cable_length / SPEED_OF_LIGHT)
            s = s * delay_phase[:, None, None]
        if self.trace_noise_std > 0.0:
            noise = self._rng.normal(0.0, self.trace_noise_std,
                                     s.shape + (2,))
            s = s + noise[..., 0] + 1j * noise[..., 1]
        return s

    def trace(self, device: DeviceUnderTest, parameter: str) -> VNATrace:
        """Measure one named trace ('s11', 's21', 's12' or 's22')."""
        indices = {"s11": (0, 0), "s12": (0, 1), "s21": (1, 0),
                   "s22": (1, 1)}
        key = parameter.lower()
        if key not in indices:
            raise ConfigurationError(
                f"unknown S-parameter {parameter!r}; choose from "
                f"{sorted(indices)}"
            )
        i, j = indices[key]
        s = self.measure(device)
        return VNATrace(self.frequency, s[:, i, j])
