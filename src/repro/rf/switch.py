"""RF switch models (paper section 4.3).

The tag multiplexes the two sensor ends with SPDT RF switches.  The
paper stresses that the switches must be *reflective* in the off state:
differential phase sensing compares the touched sensor against the
untouched one, and with an absorptive off state the untouched baseline
is absorbed instead of reflected, destroying the reference (section
4.3).  Both behaviours are modelled so that design choice can be
ablated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import from_db_amplitude


class SwitchState(enum.Enum):
    """Switch control state."""

    ON = "on"
    OFF = "off"


@dataclass(frozen=True)
class RFSwitch:
    """Single-pole RF switch between the antenna branch and a sensor end.

    The SPDT sits at the sensor end: its common port is the sensor, one
    throw goes to the splitter/antenna branch, the other to a reflective
    open.  Its off state therefore has two distinct faces: the *sensor*
    sees the reflective open (``off_reflection_*``), which the opposite
    port's measurement relies on, while the *antenna branch* looks into
    the deselected throw and sees only a small residual reflection
    (``branch_off_return_loss_db``).

    Attributes:
        name: Part identifier.
        insertion_loss_db: On-state insertion loss [dB] (one pass).
        off_reflection_magnitude: |Gamma| the sensor sees in the off
            state (≈1 reflective, ≈0 absorptive).
        off_reflection_phase: Phase [rad] of that off-state reflection.
        branch_off_return_loss_db: Return loss [dB] the antenna branch
            sees when the switch is off (large = well matched).
        switching_time: Transition time [s] (limits usable clock rates).
    """

    name: str = "ideal"
    insertion_loss_db: float = 0.0
    off_reflection_magnitude: float = 1.0
    off_reflection_phase: float = 0.0
    branch_off_return_loss_db: float = 20.0
    switching_time: float = 10e-9

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0.0:
            raise ConfigurationError(
                f"insertion loss must be non-negative dB, got "
                f"{self.insertion_loss_db}"
            )
        if not 0.0 <= self.off_reflection_magnitude <= 1.0:
            raise ConfigurationError(
                f"off-state |Gamma| must be in [0, 1], got "
                f"{self.off_reflection_magnitude}"
            )
        if self.switching_time <= 0.0:
            raise ConfigurationError(
                f"switching time must be positive, got {self.switching_time}"
            )

    @property
    def is_reflective(self) -> bool:
        """True when the off state reflects most of the incident power."""
        return self.off_reflection_magnitude >= 0.5

    @property
    def through_gain(self) -> float:
        """On-state amplitude gain (one pass) from the insertion loss."""
        return from_db_amplitude(-self.insertion_loss_db)

    @property
    def off_reflection(self) -> complex:
        """Off-state reflection the *sensor* sees (line termination)."""
        return self.off_reflection_magnitude * np.exp(
            1j * self.off_reflection_phase)

    @property
    def branch_off_reflection(self) -> complex:
        """Off-state reflection the *antenna branch* sees."""
        return complex(from_db_amplitude(-self.branch_off_return_loss_db))

    def max_toggle_frequency(self, settle_fraction: float = 0.01) -> float:
        """Highest square-wave frequency [Hz] the switch can follow while
        spending at most ``settle_fraction`` of each half period in
        transition."""
        if not 0.0 < settle_fraction < 1.0:
            raise ConfigurationError(
                f"settle fraction must be in (0, 1), got {settle_fraction}"
            )
        half_period = self.switching_time / settle_fraction
        return 1.0 / (2.0 * half_period)


#: Analog Devices HMC544AE, the prototype's reflective switch: ~0.35 dB
#: insertion loss, reflective-open off state.
HMC544AE = RFSwitch(
    name="HMC544AE",
    insertion_loss_db=0.35,
    off_reflection_magnitude=0.95,
    off_reflection_phase=0.35,
    # Composite of the deselected throw's return loss and the Wilkinson
    # splitter's isolation-resistor absorption.
    branch_off_return_loss_db=30.0,
    switching_time=120e-9,
)

#: An absorptive counterpart used to ablate the reflective-switch
#: design requirement (paper section 4.3).
ABSORPTIVE_SWITCH = RFSwitch(
    name="absorptive",
    insertion_loss_db=0.5,
    off_reflection_magnitude=0.05,
    off_reflection_phase=0.0,
    switching_time=120e-9,
)
