"""Quasi-static microstrip line model (paper section 4.1 and Appendix).

The sensor is an air-substrate microstrip: signal trace of width ``w``
suspended a height ``h`` over the ground trace.  The paper sizes it from
Steer's air-line impedance formula::

    Z = 60 ln[ 6h/w + sqrt(1 + (2h/w)^2) ]

which gives a 50-ohm trace-width-to-height ratio of about 5:1, shifting
to about 4:1 once the ground trace is widened for SMA interfacing
(their HFSS result, Fig. 19).  The wide-ground shift is modelled here as
extra fringing capacitance, i.e. an effective widening of the signal
trace that saturates once the ground extends a few heights past the
trace edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.units import MU_0, SPEED_OF_LIGHT

FloatOrArray = Union[float, np.ndarray]

#: Copper resistivity [ohm m] for conductor-loss estimates.
COPPER_RESISTIVITY = 1.68e-8

#: Fringing-widening strength of a wide ground plane, fitted so the
#: optimal 50-ohm ratio shifts from ~5:1 to ~4:1 for the paper's
#: geometry (2.5 mm trace, 6 mm ground, 0.63 mm height).
_WIDE_GROUND_GAIN = 1.4

#: Lengths scale (in units of height) over which the wide-ground
#: fringing saturates.
_WIDE_GROUND_SCALE = 4.0


def air_microstrip_impedance(height: float, width: float) -> float:
    """Characteristic impedance [ohm] of an air-substrate microstrip.

    Steer's formula (paper Appendix): valid for the suspended air line
    used by the sensor, with ``height`` the air gap h and ``width`` the
    signal trace width w.
    """
    if height <= 0.0 or width <= 0.0:
        raise ConfigurationError(
            f"height and width must be positive, got h={height}, w={width}"
        )
    ratio = height / width
    return 60.0 * math.log(6.0 * ratio + math.sqrt(1.0 + (2.0 * ratio) ** 2))


def wide_ground_effective_width(width: float, height: float,
                                ground_width: float) -> float:
    """Effective trace width [m] once a wide ground adds fringing.

    A ground trace wider than the signal trace adds fringing
    capacitance, which acts like a wider signal trace.  The widening
    saturates once the ground extends ``_WIDE_GROUND_SCALE`` heights
    beyond the trace (semi-empirical fit to the paper's HFSS sweep,
    Fig. 19).
    """
    if ground_width < width:
        raise ConfigurationError(
            f"ground width {ground_width} must be >= trace width {width}"
        )
    overhang = (ground_width - width) / (_WIDE_GROUND_SCALE * height)
    return width + _WIDE_GROUND_GAIN * height * (1.0 - math.exp(-overhang))


def synthesize_ratio_for_impedance(target_impedance: float = 50.0,
                                   ground_width_ratio: float = 1.0,
                                   height: float = 0.63e-3) -> float:
    """Trace-width-to-height ratio w/h giving the target impedance.

    With ``ground_width_ratio`` = 1 (ground no wider than the trace)
    this returns the classical ~5:1; with the paper's wide ground
    (ground_width_ratio = 6 mm / 2.5 mm = 2.4) it returns ~4:1.
    Solved by bisection on the monotone impedance-vs-width relation.
    """
    if target_impedance <= 0.0:
        raise ConfigurationError(
            f"target impedance must be positive, got {target_impedance}"
        )
    if ground_width_ratio < 1.0:
        raise ConfigurationError(
            f"ground width ratio must be >= 1, got {ground_width_ratio}"
        )

    def impedance_at(width_ratio: float) -> float:
        width = width_ratio * height
        effective = wide_ground_effective_width(
            width, height, ground_width_ratio * width)
        return air_microstrip_impedance(height, effective)

    low, high = 0.1, 100.0
    if not impedance_at(high) < target_impedance < impedance_at(low):
        raise ConfigurationError(
            f"target impedance {target_impedance} outside achievable range"
        )
    for _ in range(80):
        mid = 0.5 * (low + high)
        if impedance_at(mid) > target_impedance:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


@dataclass(frozen=True)
class MicrostripLine:
    """Air-substrate microstrip line of the WiForce sensor.

    Default dimensions are the paper's prototype: 2.5 mm signal trace,
    6 mm ground trace, 0.63 mm height, 80 mm length (section 4.1).

    Attributes:
        width: Signal trace width w [m].
        ground_width: Ground trace width [m].
        height: Air-gap height h [m].
        length: Line length [m].
        trace_thickness: Conductor thickness [m] (for loss estimates).
    """

    width: float = 2.5e-3
    ground_width: float = 6.0e-3
    height: float = 0.63e-3
    length: float = 80.0e-3
    trace_thickness: float = 35e-6

    def __post_init__(self) -> None:
        if min(self.width, self.ground_width, self.height, self.length,
               self.trace_thickness) <= 0.0:
            raise ConfigurationError("all microstrip dimensions must be positive")
        if self.ground_width < self.width:
            raise ConfigurationError(
                f"ground width {self.ground_width} must be >= trace width "
                f"{self.width}"
            )

    @property
    def characteristic_impedance(self) -> float:
        """Z0 [ohm] including the wide-ground fringing correction."""
        effective = wide_ground_effective_width(
            self.width, self.height, self.ground_width)
        return air_microstrip_impedance(self.height, effective)

    @property
    def effective_permittivity(self) -> float:
        """Effective relative permittivity (1.0 for the air substrate)."""
        return 1.0

    @property
    def phase_velocity(self) -> float:
        """Phase velocity [m/s]."""
        return SPEED_OF_LIGHT / math.sqrt(self.effective_permittivity)

    def phase_constant(self, frequency: FloatOrArray) -> FloatOrArray:
        """Phase constant beta [rad/m] at ``frequency`` [Hz]."""
        return 2.0 * np.pi * np.asarray(frequency, dtype=float) / self.phase_velocity

    def attenuation_constant(self, frequency: FloatOrArray) -> FloatOrArray:
        """Conductor-loss attenuation alpha [Np/m] at ``frequency`` [Hz].

        Skin-effect surface resistance divided by the trace width and
        line impedance — the standard quasi-TEM conductor-loss estimate.
        Dielectric loss is zero for the air substrate.
        """
        frequency = np.asarray(frequency, dtype=float)
        surface_resistance = np.sqrt(
            np.pi * frequency * MU_0 * COPPER_RESISTIVITY)
        return surface_resistance / (
            self.characteristic_impedance * self.width)

    def propagation_constant(self, frequency: FloatOrArray) -> np.ndarray:
        """Complex propagation constant gamma = alpha + j beta [1/m]."""
        return (np.asarray(self.attenuation_constant(frequency))
                + 1j * np.asarray(self.phase_constant(frequency)))

    def round_trip_phase(self, frequency: FloatOrArray,
                         distance: FloatOrArray) -> FloatOrArray:
        """Phase [rad] accumulated travelling ``distance`` [m] and back."""
        return 2.0 * np.asarray(self.phase_constant(frequency)) * np.asarray(
            distance, dtype=float)

    def electrical_length(self, frequency: float) -> float:
        """One-way electrical length [rad] of the full line."""
        return float(self.phase_constant(frequency)) * self.length
