"""Antenna models: patterns, polarization and orientation losses.

The link budgets so far use scalar boresight gains.  Real deployments
aim antennas imperfectly and the tag sits at whatever orientation the
host object imposes; this module provides the standard element models
(isotropic, dipole, patch) with gain patterns and linear-polarization
axes, and computes the orientation-dependent coupling a link budget
should apply.  The paper's evaluation keeps antennas aligned; the
orientation bench quantifies how much misalignment the deployment can
absorb.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Antenna:
    """A linearly polarized antenna element.

    Attributes:
        name: Element identifier.
        boresight_gain_dbi: Peak gain [dBi].
        pattern_exponent: Gain falls as ``cos(theta) ** exponent`` off
            boresight (0 = isotropic, ~1.3 = half-wave dipole's sin^2
            equivalent in this convention, 2-4 = patch).
        front_to_back_db: Floor of the pattern behind the element [dB
            below boresight].
    """

    name: str = "isotropic"
    boresight_gain_dbi: float = 0.0
    pattern_exponent: float = 0.0
    front_to_back_db: float = 20.0

    def __post_init__(self) -> None:
        if self.pattern_exponent < 0.0:
            raise ConfigurationError(
                f"pattern exponent must be >= 0, got {self.pattern_exponent}"
            )
        if self.front_to_back_db <= 0.0:
            raise ConfigurationError(
                f"front-to-back must be positive dB, got "
                f"{self.front_to_back_db}"
            )

    def gain_dbi(self, theta: float) -> float:
        """Gain [dBi] at ``theta`` radians off boresight."""
        floor = self.boresight_gain_dbi - self.front_to_back_db
        if self.pattern_exponent == 0.0:
            return self.boresight_gain_dbi
        projection = math.cos(min(abs(theta), math.pi))
        if projection <= 0.0:
            return floor
        gain = (self.boresight_gain_dbi
                + 10.0 * self.pattern_exponent * math.log10(projection))
        return max(gain, floor)

    def amplitude(self, theta: float) -> float:
        """Field amplitude factor at ``theta`` (sqrt of linear gain)."""
        return 10.0 ** (self.gain_dbi(theta) / 20.0)


#: Reference elements.
ISOTROPIC = Antenna()
HALF_WAVE_DIPOLE = Antenna(name="half-wave-dipole",
                           boresight_gain_dbi=2.15,
                           pattern_exponent=1.3)
PATCH_6DBI = Antenna(name="patch-6dBi", boresight_gain_dbi=6.0,
                     pattern_exponent=3.0, front_to_back_db=15.0)


def polarization_loss_db(misalignment: float,
                         cross_pol_isolation_db: float = 25.0) -> float:
    """Polarization mismatch loss [dB] between two linear antennas.

    Classic ``cos^2`` law with a cross-polarization floor: rotating the
    tag by ``misalignment`` radians relative to the reader antenna's
    polarization axis costs ``-20 log10(cos)`` dB until the element's
    finite cross-pol isolation takes over.
    """
    if cross_pol_isolation_db <= 0.0:
        raise ConfigurationError(
            f"cross-pol isolation must be positive dB, got "
            f"{cross_pol_isolation_db}"
        )
    co = abs(math.cos(misalignment))
    cross = 10.0 ** (-cross_pol_isolation_db / 20.0)
    effective = math.hypot(co, cross)
    return float(-20.0 * math.log10(min(effective, 1.0)))


@dataclass(frozen=True)
class OrientedLinkBudget:
    """Orientation-aware two-way budget modifiers for a tag link.

    Attributes:
        reader_antenna: TX/RX element (assumed identical).
        tag_antenna: Tag element.
        tag_rotation: Tag polarization rotation vs the reader [rad].
        tag_tilt: Tag boresight tilt away from the reader [rad].
        reader_pointing_error: Reader aiming error [rad].
    """

    reader_antenna: Antenna = PATCH_6DBI
    tag_antenna: Antenna = HALF_WAVE_DIPOLE
    tag_rotation: float = 0.0
    tag_tilt: float = 0.0
    reader_pointing_error: float = 0.0

    def one_way_gain_db(self) -> float:
        """Combined antenna gains + polarization for one pass [dB]."""
        return (self.reader_antenna.gain_dbi(self.reader_pointing_error)
                + self.tag_antenna.gain_dbi(self.tag_tilt)
                - polarization_loss_db(self.tag_rotation))

    def two_way_penalty_db(self) -> float:
        """Loss [dB] versus a perfectly aligned deployment, two-way.

        This is the number to add to a :class:`BackscatterLink`'s
        ``tag_blockage_db`` to fold orientation into the existing
        budget machinery.
        """
        aligned = (self.reader_antenna.boresight_gain_dbi
                   + self.tag_antenna.boresight_gain_dbi)
        return 2.0 * (aligned - self.one_way_gain_db())
