"""RF substrate: microstrip lines, two-port networks, VNA, switches.

Everything the sensor's electromagnetic half needs: quasi-static
microstrip synthesis (paper Appendix / Fig. 19), ABCD/S-parameter
two-port algebra used to model the shorted sensor line exactly
(Figs. 5 and 10), a VNA simulator for the wired calibration
measurements (Table 1), and reflective/absorptive RF switch models
(paper section 4.3).
"""

from repro.rf.microstrip import (
    air_microstrip_impedance,
    wide_ground_effective_width,
    MicrostripLine,
    synthesize_ratio_for_impedance,
)
from repro.rf.twoport import (
    TwoPort,
    abcd_line,
    abcd_series,
    abcd_shunt,
    abcd_to_s,
    s_to_abcd,
    cascade,
    input_reflection,
    mismatch_reflection,
)
from repro.rf.elements import (
    line_twoport,
    shorted_sensor_twoport,
    ideal_splitter_reflection,
)
from repro.rf.antenna import (
    Antenna,
    HALF_WAVE_DIPOLE,
    ISOTROPIC,
    PATCH_6DBI,
    OrientedLinkBudget,
    polarization_loss_db,
)
from repro.rf.connector import (
    SMAConnector,
    SMA_EDGE_LAUNCH,
    SMA_HAND_SOLDERED,
    connectorized,
)
from repro.rf.vna import VNA, VNATrace
from repro.rf.switch import RFSwitch, SwitchState, HMC544AE

__all__ = [
    "air_microstrip_impedance",
    "wide_ground_effective_width",
    "MicrostripLine",
    "synthesize_ratio_for_impedance",
    "TwoPort",
    "abcd_line",
    "abcd_series",
    "abcd_shunt",
    "abcd_to_s",
    "s_to_abcd",
    "cascade",
    "input_reflection",
    "mismatch_reflection",
    "line_twoport",
    "shorted_sensor_twoport",
    "ideal_splitter_reflection",
    "Antenna",
    "HALF_WAVE_DIPOLE",
    "ISOTROPIC",
    "PATCH_6DBI",
    "OrientedLinkBudget",
    "polarization_loss_db",
    "SMAConnector",
    "SMA_EDGE_LAUNCH",
    "SMA_HAND_SOLDERED",
    "connectorized",
    "VNA",
    "VNATrace",
    "RFSwitch",
    "SwitchState",
    "HMC544AE",
]
