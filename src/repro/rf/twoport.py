"""Two-port network algebra (ABCD and S-parameters), vectorized.

All builders and transforms operate on arrays shaped ``(..., 2, 2)``
where the leading axes typically run over frequency, so a full VNA
sweep is a single vectorized evaluation.  The sensor line with its
shorting points is modelled exactly as a cascade of line sections and
shunt contact impedances (see :mod:`repro.rf.elements`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import RFError

FloatOrArray = Union[float, np.ndarray]


def _as_matrix_stack(values_a: FloatOrArray, values_b: FloatOrArray,
                     values_c: FloatOrArray, values_d: FloatOrArray) -> np.ndarray:
    """Stack four broadcastable scalars/arrays into (..., 2, 2)."""
    a, b, c, d = np.broadcast_arrays(
        np.asarray(values_a, dtype=complex),
        np.asarray(values_b, dtype=complex),
        np.asarray(values_c, dtype=complex),
        np.asarray(values_d, dtype=complex),
    )
    matrix = np.empty(a.shape + (2, 2), dtype=complex)
    matrix[..., 0, 0] = a
    matrix[..., 0, 1] = b
    matrix[..., 1, 0] = c
    matrix[..., 1, 1] = d
    return matrix


def abcd_series(impedance: FloatOrArray) -> np.ndarray:
    """ABCD matrix of a series impedance Z."""
    z = np.asarray(impedance, dtype=complex)
    return _as_matrix_stack(np.ones_like(z), z, np.zeros_like(z),
                            np.ones_like(z))


def abcd_shunt(impedance: FloatOrArray) -> np.ndarray:
    """ABCD matrix of a shunt impedance Z to ground."""
    z = np.asarray(impedance, dtype=complex)
    if np.any(z == 0):
        raise RFError("shunt impedance of exactly zero is singular; use a "
                      "small contact resistance instead")
    y = 1.0 / z
    return _as_matrix_stack(np.ones_like(y), np.zeros_like(y), y,
                            np.ones_like(y))


def abcd_line(characteristic_impedance: FloatOrArray,
              propagation_constant: FloatOrArray,
              length: float) -> np.ndarray:
    """ABCD matrix of a transmission-line section.

    Args:
        characteristic_impedance: Z0 [ohm].
        propagation_constant: gamma = alpha + j beta [1/m]; may be an
            array over frequency.
        length: Physical length [m].
    """
    if length < 0.0:
        raise RFError(f"line length must be non-negative, got {length}")
    z0 = np.asarray(characteristic_impedance, dtype=complex)
    gamma_l = np.asarray(propagation_constant, dtype=complex) * length
    cosh = np.cosh(gamma_l)
    sinh = np.sinh(gamma_l)
    return _as_matrix_stack(cosh, z0 * sinh, sinh / z0, cosh)


def cascade(*matrices: np.ndarray) -> np.ndarray:
    """Cascade ABCD matrices left to right (port 1 to port 2)."""
    if not matrices:
        raise RFError("cascade needs at least one matrix")
    result = np.asarray(matrices[0], dtype=complex)
    for matrix in matrices[1:]:
        result = result @ np.asarray(matrix, dtype=complex)
    return result


def abcd_to_s(abcd: np.ndarray, reference_impedance: float = 50.0) -> np.ndarray:
    """Convert ABCD matrices (..., 2, 2) to S-parameters."""
    if reference_impedance <= 0.0:
        raise RFError(
            f"reference impedance must be positive, got {reference_impedance}"
        )
    a = abcd[..., 0, 0]
    b = abcd[..., 0, 1]
    c = abcd[..., 1, 0]
    d = abcd[..., 1, 1]
    z0 = reference_impedance
    denominator = a + b / z0 + c * z0 + d
    if np.any(denominator == 0):
        raise RFError("singular network: ABCD to S conversion failed")
    s11 = (a + b / z0 - c * z0 - d) / denominator
    s12 = 2.0 * (a * d - b * c) / denominator
    s21 = 2.0 / denominator
    s22 = (-a + b / z0 - c * z0 + d) / denominator
    return _as_matrix_stack(s11, s12, s21, s22)


def s_to_abcd(s: np.ndarray, reference_impedance: float = 50.0) -> np.ndarray:
    """Convert S-parameter matrices (..., 2, 2) to ABCD."""
    if reference_impedance <= 0.0:
        raise RFError(
            f"reference impedance must be positive, got {reference_impedance}"
        )
    s11 = s[..., 0, 0]
    s12 = s[..., 0, 1]
    s21 = s[..., 1, 0]
    s22 = s[..., 1, 1]
    z0 = reference_impedance
    if np.any(s21 == 0):
        raise RFError("S21 of zero: network has no through path, ABCD "
                      "representation is singular")
    a = ((1.0 + s11) * (1.0 - s22) + s12 * s21) / (2.0 * s21)
    b = z0 * ((1.0 + s11) * (1.0 + s22) - s12 * s21) / (2.0 * s21)
    c = ((1.0 - s11) * (1.0 - s22) - s12 * s21) / (2.0 * s21 * z0)
    d = ((1.0 - s11) * (1.0 + s22) + s12 * s21) / (2.0 * s21)
    return _as_matrix_stack(a, b, c, d)


def input_reflection(s: np.ndarray, load_reflection: FloatOrArray) -> np.ndarray:
    """Reflection seen at port 1 when port 2 is terminated.

    Gamma_in = S11 + S12 S21 Gamma_L / (1 - S22 Gamma_L); this is how
    the tag looks into the sensor line with the far switch providing
    the termination.
    """
    gamma_l = np.asarray(load_reflection, dtype=complex)
    s11 = s[..., 0, 0]
    s12 = s[..., 0, 1]
    s21 = s[..., 1, 0]
    s22 = s[..., 1, 1]
    denominator = 1.0 - s22 * gamma_l
    if np.any(np.abs(denominator) < 1e-15):
        raise RFError("resonant termination: input reflection is singular")
    return s11 + s12 * s21 * gamma_l / denominator


def mismatch_reflection(line_impedance: FloatOrArray,
                        reference_impedance: float = 50.0) -> np.ndarray:
    """Reflection coefficient of a line impedance in a reference system."""
    z = np.asarray(line_impedance, dtype=complex)
    return (z - reference_impedance) / (z + reference_impedance)


@dataclass(frozen=True)
class TwoPort:
    """An S-parameter block over a frequency grid.

    Attributes:
        frequency: Frequency grid [Hz], shape (K,).
        s: S-parameters, shape (K, 2, 2).
        reference_impedance: Port reference impedance [ohm].
    """

    frequency: np.ndarray
    s: np.ndarray
    reference_impedance: float = 50.0

    def __post_init__(self) -> None:
        frequency = np.asarray(self.frequency, dtype=float)
        s = np.asarray(self.s, dtype=complex)
        if s.shape != frequency.shape + (2, 2):
            raise RFError(
                f"S-parameter shape {s.shape} does not match frequency "
                f"grid {frequency.shape}"
            )
        object.__setattr__(self, "frequency", frequency)
        object.__setattr__(self, "s", s)

    @property
    def s11(self) -> np.ndarray:
        """Port-1 reflection over frequency."""
        return self.s[..., 0, 0]

    @property
    def s21(self) -> np.ndarray:
        """Forward transmission over frequency."""
        return self.s[..., 1, 0]

    @property
    def s12(self) -> np.ndarray:
        """Reverse transmission over frequency."""
        return self.s[..., 0, 1]

    @property
    def s22(self) -> np.ndarray:
        """Port-2 reflection over frequency."""
        return self.s[..., 1, 1]

    def cascade_with(self, other: "TwoPort") -> "TwoPort":
        """Cascade this block with another defined on the same grid."""
        if not np.array_equal(self.frequency, other.frequency):
            raise RFError("cannot cascade two-ports on different frequency grids")
        if self.reference_impedance != other.reference_impedance:
            raise RFError("cannot cascade two-ports with different references")
        combined = cascade(s_to_abcd(self.s, self.reference_impedance),
                           s_to_abcd(other.s, other.reference_impedance))
        return TwoPort(self.frequency,
                       abcd_to_s(combined, self.reference_impedance),
                       self.reference_impedance)

    def terminated_reflection(self, load_reflection: FloatOrArray) -> np.ndarray:
        """Gamma at port 1 for the given port-2 termination."""
        return input_reflection(self.s, load_reflection)

    def flipped(self) -> "TwoPort":
        """The same network seen from port 2 (ports swapped)."""
        swapped = self.s[..., ::-1, ::-1].copy()
        return TwoPort(self.frequency, swapped, self.reference_impedance)
