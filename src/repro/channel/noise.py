"""Receiver noise models.

Two entry points: sample-level AWGN for the full OFDM modem, and the
equivalent per-channel-estimate noise standard deviation used by the
fast frame-level sounder.  The two are linked by the least-squares
channel-estimation gain (a K-subcarrier estimate from an Np-sample
preamble averages the noise down by the per-subcarrier sample count),
and a cross-validation test in the suite holds them to each other.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ChannelError
from repro.units import thermal_noise_power


def awgn(shape, noise_power: float,
         rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Complex white Gaussian noise with total power ``noise_power``.

    Power is split evenly between I and Q.
    """
    if noise_power < 0.0:
        raise ChannelError(f"noise power must be >= 0, got {noise_power}")
    rng = rng or np.random.default_rng()
    scale = np.sqrt(noise_power / 2.0)
    return (rng.normal(0.0, 1.0, shape) + 1j * rng.normal(0.0, 1.0, shape)) * scale


def channel_estimate_noise_std(bandwidth_hz: float, preamble_samples: int,
                               subcarriers: int, tx_amplitude: float,
                               noise_figure_db: float = 6.0) -> float:
    """Std-dev of the complex noise on one subcarrier's channel estimate.

    A least-squares estimate over a ``preamble_samples``-long known
    preamble carrying ``subcarriers`` tones sees thermal noise (kTB
    over the sounding bandwidth, times the receiver noise figure)
    averaged down by the ``preamble_samples / subcarriers`` samples
    contributing per tone, and normalised by the per-tone transmit
    amplitude.

    Args:
        bandwidth_hz: Sounding bandwidth [Hz].
        preamble_samples: Time-domain preamble length.
        subcarriers: Number of sounded subcarriers.
        tx_amplitude: RMS transmit amplitude (sqrt of TX power) [sqrt(W)].

    Returns:
        Per-subcarrier complex noise std (same units as the channel).
    """
    if preamble_samples < 1 or subcarriers < 1:
        raise ChannelError("preamble samples and subcarriers must be >= 1")
    if preamble_samples < subcarriers:
        raise ChannelError(
            f"preamble ({preamble_samples}) must be at least as long as "
            f"the subcarrier count ({subcarriers})"
        )
    if tx_amplitude <= 0.0:
        raise ChannelError(f"tx amplitude must be positive, got {tx_amplitude}")
    noise = thermal_noise_power(bandwidth_hz, noise_figure_db)
    averaging = preamble_samples / subcarriers
    return float(np.sqrt(noise / averaging) / tx_amplitude)
