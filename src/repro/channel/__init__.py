"""Wireless channel substrate: propagation, multipath, tissue, noise.

Everything between the reader's antennas and the tag: two-way
backscatter link budgets (Friis), static indoor multipath clutter the
harmonic FFT must reject (paper section 3.3), the layered gelatin
tissue phantom of section 5.2, and receiver noise models.
"""

from repro.channel.propagation import (
    free_space_path_gain,
    backscatter_link_gain,
    BackscatterLink,
)
from repro.channel.multipath import Path, MultipathChannel, indoor_channel
from repro.channel.tissue import TissueLayer, TissuePhantom, body_phantom
from repro.channel.interference import (
    BurstyInterferer,
    corrupt_stream,
    excise_interference,
)
from repro.channel.mobility import (
    clutter_rejection_db,
    doppler_shift,
    equivalent_speed,
    walking_person_clutter,
)
from repro.channel.noise import awgn, channel_estimate_noise_std

__all__ = [
    "free_space_path_gain",
    "backscatter_link_gain",
    "BackscatterLink",
    "Path",
    "MultipathChannel",
    "indoor_channel",
    "TissueLayer",
    "TissuePhantom",
    "body_phantom",
    "BurstyInterferer",
    "corrupt_stream",
    "excise_interference",
    "clutter_rejection_db",
    "doppler_shift",
    "equivalent_speed",
    "walking_person_clutter",
    "awgn",
    "channel_estimate_noise_std",
]
