"""Layered tissue phantom (paper section 5.2, Fig. 15).

The paper tests through a gelatin phantom with muscle / fat / skin
layers (25 / 10 / 2 mm) whose dielectric properties mimic human tissue.
Here the phantom is a normal-incidence layered-dielectric stack solved
with the standard transfer-matrix method, using Gabriel-database
dielectric values anchored at 900 MHz and 2.4 GHz (log-frequency
interpolated in between).  The complex transmission coefficient it
returns multiplies the tag path of the link budget, reproducing both
the tens-of-dB two-way loss and the extra (static) phase the
differential processing must cancel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple, Union

import numpy as np

from repro.errors import ChannelError
from repro.units import EPSILON_0, ETA_0, SPEED_OF_LIGHT

FloatOrArray = Union[float, np.ndarray]

#: (relative permittivity, conductivity [S/m]) anchors per tissue at
#: 900 MHz and 2.4 GHz (Gabriel et al. dielectric database values).
_TISSUE_ANCHORS: Dict[str, Dict[float, Tuple[float, float]]] = {
    "muscle": {900e6: (55.0, 0.94), 2.4e9: (52.7, 1.74)},
    "fat": {900e6: (5.46, 0.051), 2.4e9: (5.28, 0.10)},
    "skin": {900e6: (41.4, 0.87), 2.4e9: (38.0, 1.46)},
    "gelatin": {900e6: (50.0, 0.8), 2.4e9: (48.0, 1.5)},
}


def _interpolate_anchor(anchors: Dict[float, Tuple[float, float]],
                        frequency: float) -> Tuple[float, float]:
    """Log-frequency interpolation between the two anchor points."""
    points = sorted(anchors.items())
    (f_low, (eps_low, sig_low)), (f_high, (eps_high, sig_high)) = points
    if frequency <= f_low:
        return eps_low, sig_low
    if frequency >= f_high:
        return eps_high, sig_high
    t = (math.log(frequency) - math.log(f_low)) / (
        math.log(f_high) - math.log(f_low))
    return (eps_low + t * (eps_high - eps_low),
            sig_low + t * (sig_high - sig_low))


@dataclass(frozen=True)
class TissueLayer:
    """One tissue slab.

    Attributes:
        name: Tissue type; must exist in the anchor table unless both
            dielectric overrides are given.
        thickness: Slab thickness [m].
        permittivity_override: Optional fixed relative permittivity.
        conductivity_override: Optional fixed conductivity [S/m].
    """

    name: str
    thickness: float
    permittivity_override: float = 0.0
    conductivity_override: float = -1.0

    def __post_init__(self) -> None:
        if self.thickness <= 0.0:
            raise ChannelError(
                f"layer thickness must be positive, got {self.thickness}"
            )
        if (self.permittivity_override == 0.0
                and self.name not in _TISSUE_ANCHORS):
            raise ChannelError(
                f"unknown tissue {self.name!r}; known: "
                f"{sorted(_TISSUE_ANCHORS)}"
            )

    def complex_permittivity(self, frequency: float) -> complex:
        """Complex relative permittivity eps' - j sigma/(omega eps0)."""
        if frequency <= 0.0:
            raise ChannelError(f"frequency must be positive, got {frequency}")
        if self.permittivity_override > 0.0:
            permittivity = self.permittivity_override
            conductivity = max(self.conductivity_override, 0.0)
        else:
            permittivity, conductivity = _interpolate_anchor(
                _TISSUE_ANCHORS[self.name], frequency)
        omega = 2.0 * math.pi * frequency
        return permittivity - 1j * conductivity / (omega * EPSILON_0)


class TissuePhantom:
    """Stack of tissue layers between air half-spaces.

    Normal-incidence transfer-matrix solution: each layer contributes
    its characteristic impedance and complex electrical thickness; the
    stack's transmission coefficient is read from the total ABCD-like
    field matrix.
    """

    def __init__(self, layers: Sequence[TissueLayer]):
        self._layers = list(layers)
        if not self._layers:
            raise ChannelError("a phantom needs at least one layer")

    @property
    def layers(self) -> Tuple[TissueLayer, ...]:
        """The layer stack, TX side first."""
        return tuple(self._layers)

    @property
    def total_thickness(self) -> float:
        """Stack thickness [m]."""
        return sum(layer.thickness for layer in self._layers)

    def transmission_coefficient(self, frequency: FloatOrArray) -> np.ndarray:
        """Complex field transmission air -> stack -> air.

        Vectorized over frequency.  |t| < 1 gives the one-way loss; the
        phase carries the extra electrical length of the stack.
        """
        frequencies = np.atleast_1d(np.asarray(frequency, dtype=float))
        result = np.empty(frequencies.shape, dtype=complex)
        for index, f in enumerate(frequencies):
            if f <= 0.0:
                raise ChannelError(f"frequency must be positive, got {f}")
            omega = 2.0 * math.pi * f
            matrix = np.eye(2, dtype=complex)
            for layer in self._layers:
                eps = layer.complex_permittivity(float(f))
                refractive = np.sqrt(eps)
                wavenumber = omega / SPEED_OF_LIGHT * refractive
                impedance = ETA_0 / refractive
                kl = wavenumber * layer.thickness
                layer_matrix = np.array(
                    [[np.cos(kl), 1j * impedance * np.sin(kl)],
                     [1j * np.sin(kl) / impedance, np.cos(kl)]],
                    dtype=complex,
                )
                matrix = matrix @ layer_matrix
            a, b = matrix[0]
            c, d = matrix[1]
            denominator = a * ETA_0 + b + c * ETA_0 * ETA_0 + d * ETA_0
            result[index] = 2.0 * ETA_0 / denominator
        if np.isscalar(frequency):
            return result[0]
        return result.reshape(np.shape(frequency))

    def one_way_loss_db(self, frequency: float) -> float:
        """One-way power loss through the stack [dB] (positive)."""
        t = self.transmission_coefficient(float(frequency))
        magnitude = abs(complex(t))
        if magnitude <= 0.0:
            return float("inf")
        return -20.0 * math.log10(magnitude)

    def two_way_loss_db(self, frequency: float) -> float:
        """Round-trip power loss through the stack [dB]."""
        return 2.0 * self.one_way_loss_db(frequency)


def body_phantom() -> TissuePhantom:
    """The paper's 3-layer phantom: 25 mm muscle, 10 mm fat, 2 mm skin."""
    return TissuePhantom([
        TissueLayer("muscle", 25e-3),
        TissueLayer("fat", 10e-3),
        TissueLayer("skin", 2e-3),
    ])
