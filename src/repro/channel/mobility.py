"""Moving clutter and the "artificial Doppler" separation argument.

Paper section 3.3: the switching tone at fs is formally equivalent to a
reflector whose two-way Doppler equals fs.  For fs = 1 kHz at 900 MHz
that is ~170 m/s (600 km/h) — two orders of magnitude beyond indoor
motion (people walking at 1-2 m/s produce only tens of Hz), so real
movement lands far below the readout tones and is rejected by the
snapshot DFT.  This
module provides walking-person clutter generators and the equivalence
helpers, so that claim is testable and benchable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.multipath import MultipathChannel, Path
from repro.errors import ChannelError
from repro.units import SPEED_OF_LIGHT


def doppler_shift(speed: float, carrier_frequency: float) -> float:
    """Two-way Doppler shift [Hz] of a reflector moving at ``speed``."""
    if carrier_frequency <= 0.0:
        raise ChannelError(
            f"carrier frequency must be positive, got {carrier_frequency}"
        )
    return 2.0 * speed * carrier_frequency / SPEED_OF_LIGHT


def equivalent_speed(switching_frequency: float,
                     carrier_frequency: float) -> float:
    """Speed [m/s] whose Doppler equals a switching tone (section 3.3).

    For the paper's 1 kHz tone at 900 MHz this is ~170 m/s — two
    orders of magnitude beyond anything in an indoor scene, which is
    why the tone bins are clean.
    """
    if switching_frequency <= 0.0:
        raise ChannelError(
            f"switching frequency must be positive, got "
            f"{switching_frequency}"
        )
    if carrier_frequency <= 0.0:
        raise ChannelError(
            f"carrier frequency must be positive, got {carrier_frequency}"
        )
    return switching_frequency * SPEED_OF_LIGHT / (2.0 * carrier_frequency)


def walking_person_clutter(carrier_frequency: float,
                           speed: float = 1.4,
                           reflection_amplitude: float = 2e-3,
                           distance: float = 2.5,
                           segments: int = 3,
                           rng: Optional[np.random.Generator] = None
                           ) -> MultipathChannel:
    """Clutter from a walking person: several limb reflections.

    Each body segment reflects with its own Doppler (torso at the walk
    speed, limbs swinging up to ~2x), producing the low-frequency
    Doppler spread real deployments see.

    Args:
        carrier_frequency: Reader carrier [Hz].
        speed: Walking speed [m/s].
        reflection_amplitude: Total reflection amplitude of the body.
        distance: Path length via the person [m].
        segments: Number of body-segment reflections.
        rng: Random source for segment phases/Doppler spread.
    """
    if speed < 0.0:
        raise ChannelError(f"speed must be >= 0, got {speed}")
    if segments < 1:
        raise ChannelError(f"need at least one segment, got {segments}")
    rng = rng or np.random.default_rng()
    amplitudes = rng.dirichlet(np.ones(segments)) * reflection_amplitude
    paths = []
    for index in range(segments):
        # Torso moves at the walking speed; limbs swing faster.
        multiplier = 1.0 if index == 0 else rng.uniform(0.5, 2.0)
        doppler = doppler_shift(speed * multiplier, carrier_frequency)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        paths.append(Path.from_distance(
            float(amplitudes[index]), distance * (1.0 + 0.02 * index),
            phase=phase, doppler=doppler))
    return MultipathChannel(paths)


def clutter_rejection_db(tone_frequency: float, clutter_doppler: float,
                         group_length: int, frame_period: float) -> float:
    """Rectangular-window DFT rejection of clutter at a readout tone.

    How far down [dB] a unit-amplitude moving-clutter line at
    ``clutter_doppler`` appears in the DFT bin at ``tone_frequency``,
    for a group of ``group_length`` snapshots spaced ``frame_period``.
    """
    if group_length < 2 or frame_period <= 0.0:
        raise ChannelError("need group_length >= 2 and positive frame period")
    n = group_length
    offset = (tone_frequency - clutter_doppler) * frame_period
    numerator = np.sin(np.pi * offset * n)
    denominator = n * np.sin(np.pi * offset)
    if abs(denominator) < 1e-300:
        return 0.0
    leakage = abs(numerator / denominator)
    if leakage <= 0.0:
        return float("inf")
    return float(-20.0 * np.log10(leakage))
