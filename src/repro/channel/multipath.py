"""Static indoor multipath clutter.

The harmonic-FFT algorithm (paper section 3.3) exists because indoor
environments reflect the excitation from walls, furniture and bodies:
those reflections land in the zero-Doppler bin of the snapshot FFT
while the switching tag shows up at fs and 4 fs.  This module models
the clutter as a discrete set of static specular paths, plus an
optional slowly-moving path to exercise the algorithm's rejection of
low-Doppler motion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ChannelError
from repro.units import SPEED_OF_LIGHT


@dataclass(frozen=True)
class Path:
    """One specular propagation path.

    Attributes:
        gain: Complex amplitude (includes reflection losses).
        delay: Propagation delay [s].
        doppler: Doppler shift [Hz] (0 for static clutter).
    """

    gain: complex
    delay: float
    doppler: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 0.0:
            raise ChannelError(f"path delay must be >= 0, got {self.delay}")

    @classmethod
    def from_distance(cls, amplitude: float, distance: float,
                      phase: float = 0.0, doppler: float = 0.0) -> "Path":
        """Build a path from its travelled distance [m]."""
        if distance <= 0.0:
            raise ChannelError(f"distance must be positive, got {distance}")
        gain = amplitude * np.exp(1j * phase)
        return cls(gain=complex(gain), delay=distance / SPEED_OF_LIGHT,
                   doppler=doppler)


class MultipathChannel:
    """Sum of specular paths evaluated on a subcarrier grid.

    The frequency response at absolute frequency f and time t is
    ``sum_i g_i exp(-j 2 pi f d_i) exp(j 2 pi nu_i t)``.
    """

    def __init__(self, paths: Sequence[Path]):
        self._paths: List[Path] = list(paths)

    @property
    def paths(self) -> List[Path]:
        """The path list (copy)."""
        return list(self._paths)

    @property
    def is_static(self) -> bool:
        """True when no path carries Doppler."""
        return all(path.doppler == 0.0 for path in self._paths)

    def frequency_response(self, frequency: np.ndarray,
                           time: float = 0.0) -> np.ndarray:
        """Complex response over ``frequency`` [Hz] at time ``time`` [s]."""
        frequency = np.asarray(frequency, dtype=float)
        response = np.zeros(frequency.shape, dtype=complex)
        for path in self._paths:
            response += (path.gain
                         * np.exp(-2j * np.pi * frequency * path.delay)
                         * np.exp(2j * np.pi * path.doppler * time))
        return response

    def response_series(self, frequency: np.ndarray,
                        times: np.ndarray) -> np.ndarray:
        """Response for every (time, frequency) pair, shape (N, K)."""
        frequency = np.asarray(frequency, dtype=float)
        times = np.asarray(times, dtype=float)
        static = np.zeros(frequency.shape, dtype=complex)
        moving = np.zeros((times.size, frequency.size), dtype=complex)
        for path in self._paths:
            tone = path.gain * np.exp(-2j * np.pi * frequency * path.delay)
            if path.doppler == 0.0:
                static += tone
            else:
                rotation = np.exp(2j * np.pi * path.doppler * times)
                moving += rotation[:, None] * tone[None, :]
        return static[None, :] + moving


def indoor_channel(frequency_hz: float, path_count: int = 6,
                   max_excess_delay: float = 80e-9,
                   clutter_to_direct_db: float = 10.0,
                   direct_distance: float = 1.0,
                   direct_gain: float = 1e-2,
                   rng: Optional[np.random.Generator] = None) -> MultipathChannel:
    """Random static indoor clutter around a direct path.

    Args:
        frequency_hz: Carrier (sets the direct path's phase scale).
        path_count: Number of clutter paths beyond the direct one.
        max_excess_delay: Clutter excess delay spread [s].
        clutter_to_direct_db: How far below the direct path the total
            clutter power sits [dB].
        direct_distance: Direct path length [m].
        direct_gain: Direct path amplitude.
        rng: Random source.
    """
    if path_count < 0:
        raise ChannelError(f"path count must be >= 0, got {path_count}")
    rng = rng or np.random.default_rng()
    paths = [Path.from_distance(direct_gain, direct_distance)]
    if path_count == 0:
        return MultipathChannel(paths)
    clutter_amplitude = direct_gain * 10.0 ** (-clutter_to_direct_db / 20.0)
    weights = rng.exponential(1.0, path_count)
    weights = weights / np.sqrt(np.sum(weights ** 2))
    for i in range(path_count):
        excess = rng.uniform(0.1, 1.0) * max_excess_delay
        distance = direct_distance + excess * SPEED_OF_LIGHT
        phase = rng.uniform(0.0, 2.0 * np.pi)
        paths.append(Path.from_distance(
            clutter_amplitude * float(weights[i]), distance, phase))
    return MultipathChannel(paths)
