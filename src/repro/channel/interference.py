"""Co-channel interference: bursty Wi-Fi traffic in the sounding band.

WiForce's reader shares ISM spectrum with data traffic (the paper's
pitch is precisely coexistence with Wi-Fi).  Foreign OFDM bursts that
overlap a sounding frame corrupt that frame's channel estimate — not as
white noise but as occasional large outliers.  This module models the
bursty interferer, and :func:`corrupt_stream` applies it to a captured
channel-estimate stream so the robust-extraction ablation can quantify
the damage and the cure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.channel.noise import awgn
from repro.errors import ChannelError
from repro.reader.sounder import ChannelEstimateStream


@dataclass(frozen=True)
class BurstyInterferer:
    """A packetized co-channel transmitter.

    Attributes:
        duty: Fraction of time the interferer is on the air.
        burst_frames: Mean sounding frames one burst spans.
        interference_to_signal_db: Corruption power relative to the
            static channel magnitude during a hit [dB].
    """

    duty: float = 0.05
    burst_frames: float = 3.0
    interference_to_signal_db: float = -10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty < 1.0:
            raise ChannelError(f"duty must be in [0, 1), got {self.duty}")
        if self.burst_frames < 1.0:
            raise ChannelError(
                f"burst span must be >= 1 frame, got {self.burst_frames}"
            )

    def hit_mask(self, frames: int,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Boolean per-frame mask of interference hits.

        A two-state (gap/burst) renewal process with geometric dwell
        times matching the configured duty and burst length.
        """
        if frames < 1:
            raise ChannelError(f"frames must be >= 1, got {frames}")
        rng = rng or np.random.default_rng()
        if self.duty == 0.0:
            return np.zeros(frames, dtype=bool)
        mean_gap = self.burst_frames * (1.0 - self.duty) / self.duty
        mask = np.zeros(frames, dtype=bool)
        index = 0
        on_air = rng.random() < self.duty
        while index < frames:
            if on_air:
                span = 1 + rng.geometric(1.0 / self.burst_frames)
                mask[index:index + span] = True
            else:
                span = 1 + rng.geometric(1.0 / max(mean_gap, 1.0))
            index += span
            on_air = not on_air
        return mask


def corrupt_stream(stream: ChannelEstimateStream,
                   interferer: BurstyInterferer,
                   rng: Optional[np.random.Generator] = None
                   ) -> Tuple[ChannelEstimateStream, np.ndarray]:
    """Apply bursty interference to a channel-estimate stream.

    Frames hit by a burst get a large complex perturbation scaled to
    the stream's own signal level.

    Returns:
        (corrupted stream, per-frame hit mask).
    """
    rng = rng or np.random.default_rng()
    mask = interferer.hit_mask(stream.frames, rng)
    estimates = stream.estimates.copy()
    if mask.any():
        signal_power = float(np.mean(np.abs(stream.estimates) ** 2))
        corruption_power = signal_power * 10.0 ** (
            interferer.interference_to_signal_db / 10.0)
        hits = int(mask.sum())
        estimates[mask] += awgn(
            (hits, stream.frequencies.size), corruption_power, rng)
    return (
        ChannelEstimateStream(
            estimates=estimates,
            times=stream.times.copy(),
            frequencies=stream.frequencies.copy(),
            frame_period=stream.frame_period,
        ),
        mask,
    )


def excise_interference(stream: ChannelEstimateStream,
                        threshold_factor: float = 3.0,
                        reference_percentile: float = 75.0
                        ) -> Tuple[ChannelEstimateStream, np.ndarray]:
    """Detect and blank interference-hit frames (robust pre-filter).

    Each frame's total deviation from the median frame is compared
    against a high percentile of the deviation distribution.  The
    percentile basis matters: the tag's own switching produces a
    *structured*, bounded spread of deviations (four switch states),
    which the 75th percentile absorbs, while genuine interference hits
    sit far above it (and, at up to ~20% duty, stay outside the
    reference percentile).  Flagged frames are replaced by the median frame,
    so the snapshot DFT sees a benign value instead of a spike;
    blanking a few percent of frames costs a negligible amount of tone
    energy.

    Returns:
        (cleaned stream, detected-hit mask).
    """
    if threshold_factor <= 0.0:
        raise ChannelError(
            f"threshold must be positive, got {threshold_factor}"
        )
    if not 50.0 <= reference_percentile < 100.0:
        raise ChannelError(
            f"reference percentile must be in [50, 100), got "
            f"{reference_percentile}"
        )
    estimates = stream.estimates
    median_frame = np.median(estimates.real, axis=0) + 1j * np.median(
        estimates.imag, axis=0)
    deviation = np.abs(estimates - median_frame[None, :]).sum(axis=1)
    scale = float(np.percentile(deviation, reference_percentile))
    if scale <= 0.0:
        return stream, np.zeros(stream.frames, dtype=bool)
    flagged = deviation > threshold_factor * scale
    cleaned = estimates.copy()
    cleaned[flagged] = median_frame
    return (
        ChannelEstimateStream(
            estimates=cleaned,
            times=stream.times.copy(),
            frequencies=stream.frequencies.copy(),
            frame_period=stream.frame_period,
        ),
        flagged,
    )
