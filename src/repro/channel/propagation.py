"""Free-space propagation and backscatter link budgets.

The reader experiments (paper sections 5.1 and 5.4) place TX and RX
antennas around the tag; the backscattered signal pays path loss twice
(TX-to-tag and tag-to-RX).  These helpers compute complex path gains —
amplitude from Friis, phase from the electrical length — so the channel
estimate carries the same air-propagation phase the differential
processing must cancel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ChannelError
from repro.units import SPEED_OF_LIGHT, from_db

FloatOrArray = Union[float, np.ndarray]


def free_space_path_gain(frequency: FloatOrArray, distance: float,
                         gain_tx_dbi: float = 0.0,
                         gain_rx_dbi: float = 0.0) -> np.ndarray:
    """Complex one-way path gain (amplitude + propagation phase).

    Friis amplitude ``lambda / (4 pi d)`` scaled by the endpoint antenna
    gains, with phase ``exp(-j 2 pi f d / c)``.

    Args:
        frequency: Carrier or subcarrier frequencies [Hz].
        distance: Path length [m], must be positive.
        gain_tx_dbi / gain_rx_dbi: Endpoint antenna gains [dBi].
    """
    if distance <= 0.0:
        raise ChannelError(f"distance must be positive, got {distance}")
    frequency = np.asarray(frequency, dtype=float)
    if np.any(frequency <= 0.0):
        raise ChannelError("frequencies must be positive")
    wavelength = SPEED_OF_LIGHT / frequency
    amplitude = (wavelength / (4.0 * np.pi * distance)
                 * np.sqrt(from_db(gain_tx_dbi) * from_db(gain_rx_dbi)))
    phase = np.exp(-2j * np.pi * frequency * distance / SPEED_OF_LIGHT)
    return amplitude * phase


def backscatter_link_gain(frequency: FloatOrArray, tx_to_tag: float,
                          tag_to_rx: float, gain_tx_dbi: float = 0.0,
                          gain_rx_dbi: float = 0.0,
                          tag_gain_dbi: float = 2.0) -> np.ndarray:
    """Complex two-way gain TX -> tag -> RX (excluding tag reflection).

    The tag's antenna gain applies on both passes.  Multiply by the
    tag's reflection coefficient to get its channel contribution.
    """
    forward = free_space_path_gain(frequency, tx_to_tag, gain_tx_dbi,
                                   tag_gain_dbi)
    backward = free_space_path_gain(frequency, tag_to_rx, tag_gain_dbi,
                                    gain_rx_dbi)
    return forward * backward


@dataclass(frozen=True)
class BackscatterLink:
    """Geometry + gains of one reader/tag deployment.

    Attributes:
        tx_to_tag: TX antenna to tag distance [m].
        tag_to_rx: Tag to RX antenna distance [m].
        tx_to_rx: Direct TX-to-RX distance [m].
        gain_tx_dbi / gain_rx_dbi: Reader antenna gains [dBi].
        tag_gain_dbi: Tag antenna gain [dBi].
        direct_blockage_db: Extra attenuation on the direct path [dB]
            (e.g. the metal plate of the tissue experiment, section 5.2).
        tag_blockage_db: Extra one-way attenuation on each tag path [dB]
            (e.g. through-tissue loss; use TissuePhantom for the full
            complex coefficient).
    """

    tx_to_tag: float = 0.5
    tag_to_rx: float = 0.5
    tx_to_rx: float = 1.0
    gain_tx_dbi: float = 6.0
    gain_rx_dbi: float = 6.0
    tag_gain_dbi: float = 2.0
    direct_blockage_db: float = 0.0
    tag_blockage_db: float = 0.0

    def __post_init__(self) -> None:
        if min(self.tx_to_tag, self.tag_to_rx, self.tx_to_rx) <= 0.0:
            raise ChannelError("all link distances must be positive")
        if self.direct_blockage_db < 0.0 or self.tag_blockage_db < 0.0:
            raise ChannelError("blockage attenuations must be >= 0 dB")

    def tag_path_gain(self, frequency: FloatOrArray) -> np.ndarray:
        """Two-way complex gain of the tag path."""
        gain = backscatter_link_gain(
            frequency, self.tx_to_tag, self.tag_to_rx,
            self.gain_tx_dbi, self.gain_rx_dbi, self.tag_gain_dbi)
        return gain * from_db(-2.0 * self.tag_blockage_db) ** 0.5

    def direct_path_gain(self, frequency: FloatOrArray) -> np.ndarray:
        """Complex gain of the TX-to-RX direct path."""
        gain = free_space_path_gain(frequency, self.tx_to_rx,
                                    self.gain_tx_dbi, self.gain_rx_dbi)
        return gain * from_db(-self.direct_blockage_db) ** 0.5

    def two_way_loss_db(self, frequency: float) -> float:
        """Two-way tag path loss [dB] (positive number)."""
        gain = np.abs(self.tag_path_gain(frequency)) ** 2
        return float(-10.0 * np.log10(gain))

    def direct_loss_db(self, frequency: float) -> float:
        """Direct path loss [dB] (positive number)."""
        gain = np.abs(self.direct_path_gain(frequency)) ** 2
        return float(-10.0 * np.log10(gain))
