"""Physical constants and unit helpers.

Internally the library works in strict SI units (metres, newtons, hertz,
seconds, watts).  The paper, like most RF/mechanics literature, quotes
values in mixed units (mm, GHz, dBm, degrees); the helpers here convert
at the API boundary so unit bugs cannot creep into the physics.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Vacuum permittivity [F/m].
EPSILON_0 = 8.8541878128e-12

#: Vacuum permeability [H/m].
MU_0 = 4.0e-7 * math.pi

#: Characteristic impedance of free space [ohm].
ETA_0 = math.sqrt(MU_0 / EPSILON_0)

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Standard noise reference temperature [K].
T_REF = 290.0


def mm(value: float) -> float:
    """Convert millimetres to metres."""
    return value * 1e-3


def to_mm(value: float) -> float:
    """Convert metres to millimetres."""
    return value * 1e3


def um(value: float) -> float:
    """Convert micrometres to metres."""
    return value * 1e-6


def ghz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * 1e9


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * 1e6


def khz(value: float) -> float:
    """Convert kilohertz to hertz."""
    return value * 1e3


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def db(power_ratio: float) -> float:
    """Convert a power ratio to decibels."""
    if power_ratio <= 0.0:
        return -math.inf
    return 10.0 * math.log10(power_ratio)


def from_db(decibels: float) -> float:
    """Convert decibels to a power ratio."""
    return 10.0 ** (decibels / 10.0)


def db_amplitude(amplitude_ratio: float) -> float:
    """Convert an amplitude (voltage) ratio to decibels."""
    if amplitude_ratio <= 0.0:
        return -math.inf
    return 20.0 * math.log10(amplitude_ratio)


def from_db_amplitude(decibels: float) -> float:
    """Convert decibels to an amplitude (voltage) ratio."""
    return 10.0 ** (decibels / 20.0)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 1e-3 * from_db(dbm)


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm."""
    if watts <= 0.0:
        return -math.inf
    return db(watts / 1e-3)


def deg(radians: float) -> float:
    """Convert radians to degrees."""
    return math.degrees(radians)


def rad(degrees: float) -> float:
    """Convert degrees to radians."""
    return math.radians(degrees)


def wavelength(frequency_hz: float, relative_permittivity: float = 1.0) -> float:
    """Wavelength [m] at ``frequency_hz`` in a medium with the given
    relative permittivity (1.0 = vacuum/air)."""
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    if relative_permittivity <= 0.0:
        raise ValueError(
            f"relative permittivity must be positive, got {relative_permittivity}"
        )
    return SPEED_OF_LIGHT / (frequency_hz * math.sqrt(relative_permittivity))


def wrap_phase(angle_rad: float) -> float:
    """Wrap a phase angle to the interval (-pi, pi]."""
    wrapped = math.fmod(angle_rad + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def thermal_noise_power(bandwidth_hz: float, noise_figure_db: float = 0.0,
                        temperature_k: float = T_REF) -> float:
    """Thermal noise power [W] in ``bandwidth_hz`` with a receiver noise
    figure in dB (kTB * NF)."""
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return BOLTZMANN * temperature_k * bandwidth_hz * from_db(noise_figure_db)
