"""Beam dynamics: why the phase-group stationarity assumption holds.

Paper section 3.3 assumes the contact force — hence the shorting points
— stays constant across the N snapshots of a phase group, arguing that
"mechanical forces are much slower (take about 0.5-1 seconds to
stabilize)" than the wireless sampling.  This module makes that claim
computable: modal frequencies of the composite beam (Euler-Bernoulli,
simply supported), elastomer damping, and the resulting settling time,
which the reader compares against its group duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, MechanicsError
from repro.mechanics.beam import CompositeBeam


@dataclass(frozen=True)
class ModalSummary:
    """Vibration summary of the sensor's top structure.

    Attributes:
        natural_frequencies: First modal frequencies [Hz], ascending.
        damping_ratio: Effective viscous damping ratio (elastomer).
        settling_time: 2%-band settling time of the fundamental [s].
    """

    natural_frequencies: Tuple[float, ...]
    damping_ratio: float
    settling_time: float

    @property
    def fundamental(self) -> float:
        """First natural frequency [Hz]."""
        return self.natural_frequencies[0]


def natural_frequencies(beam: CompositeBeam, modes: int = 3,
                        foundation_stiffness: float = 0.0
                        ) -> Tuple[float, ...]:
    """First ``modes`` natural frequencies [Hz] of the laminated beam.

    Simply supported Euler-Bernoulli beam, optionally on a Winkler
    foundation: ``omega_n^2 = ((n pi / L)^4 EI + k_f) / mu``.
    """
    if modes < 1:
        raise ConfigurationError(f"need at least one mode, got {modes}")
    if foundation_stiffness < 0.0:
        raise ConfigurationError(
            f"foundation stiffness must be >= 0, got {foundation_stiffness}"
        )
    mu = beam.mass_per_length
    if mu <= 0.0:
        raise MechanicsError("beam has no mass per length")
    frequencies = []
    for n in range(1, modes + 1):
        wavenumber = n * np.pi / beam.length
        omega_squared = (wavenumber ** 4 * beam.bending_stiffness
                         + foundation_stiffness) / mu
        frequencies.append(float(np.sqrt(omega_squared) / (2.0 * np.pi)))
    return tuple(frequencies)


def settling_time(frequency_hz: float, damping_ratio: float,
                  band: float = 0.02) -> float:
    """Time [s] for a damped mode to settle within ``band`` of final.

    Classical second-order estimate ``t_s = -ln(band) / (zeta omega_n)``.
    """
    if frequency_hz <= 0.0:
        raise ConfigurationError(
            f"frequency must be positive, got {frequency_hz}"
        )
    if not 0.0 < damping_ratio < 1.0:
        raise ConfigurationError(
            f"damping ratio must be in (0, 1), got {damping_ratio}"
        )
    if not 0.0 < band < 1.0:
        raise ConfigurationError(f"band must be in (0, 1), got {band}")
    omega = 2.0 * np.pi * frequency_hz
    return float(-np.log(band) / (damping_ratio * omega))


def modal_summary(beam: CompositeBeam, damping_ratio: float = 0.12,
                  foundation_stiffness: float = 0.0,
                  modes: int = 3) -> ModalSummary:
    """Modal frequencies + settling time for the sensor beam.

    The default damping ratio is typical for a silicone elastomer
    laminate (highly dissipative compared to bare metal).
    """
    frequencies = natural_frequencies(beam, modes, foundation_stiffness)
    settle = settling_time(frequencies[0], damping_ratio)
    return ModalSummary(natural_frequencies=frequencies,
                        damping_ratio=damping_ratio,
                        settling_time=settle)


def stationarity_margin(beam: CompositeBeam, group_duration: float,
                        damping_ratio: float = 0.12,
                        foundation_stiffness: float = 0.0) -> float:
    """How many phase groups fit inside one mechanical settling time.

    The paper's assumption needs this to be >> 1: the force evolves on
    the settling-time scale, so consecutive groups see an essentially
    static contact state.  For the prototype (36 ms groups, ~0.1-1 s
    settling) the margin is around an order of magnitude.
    """
    if group_duration <= 0.0:
        raise ConfigurationError(
            f"group duration must be positive, got {group_duration}"
        )
    summary = modal_summary(beam, damping_ratio, foundation_stiffness)
    return summary.settling_time / group_duration


def press_transient(beam: CompositeBeam, times: np.ndarray,
                    damping_ratio: float = 0.12,
                    foundation_stiffness: float = 0.0) -> np.ndarray:
    """Normalised step response of the fundamental mode.

    Models how the contact state approaches steady state after a step
    press: ``1 - exp(-zeta w t) (cos(w_d t) + (zeta w / w_d) sin(w_d t))``.
    Used by the experiments to emulate force ramps realistically.
    """
    times = np.asarray(times, dtype=float)
    if np.any(times < 0.0):
        raise ConfigurationError("times must be non-negative")
    frequencies = natural_frequencies(beam, 1, foundation_stiffness)
    omega = 2.0 * np.pi * frequencies[0]
    zeta = damping_ratio
    damped = omega * np.sqrt(1.0 - zeta ** 2)
    envelope = np.exp(-zeta * omega * times)
    return 1.0 - envelope * (np.cos(damped * times)
                             + (zeta * omega / damped)
                             * np.sin(damped * times))
