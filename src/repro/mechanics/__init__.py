"""Beam/contact mechanics substrate.

Models the WiForce sensor's mechanical half: a soft elastomer beam
bonded to the signal trace, suspended over the ground trace by an air
gap.  Pressing the beam closes the gap over a finite contact region
whose edges (the *shorting points*) shift outward as force grows — the
effect the RF half transduces into phase (paper sections 3.1 and 4.2).
"""

from repro.mechanics.materials import (
    Material,
    ECOFLEX_0030,
    ECOFLEX_0050,
    COPPER,
    FR4,
    GELATIN_PHANTOM,
    material_library,
)
from repro.mechanics.beam import (
    BeamSection,
    CompositeBeam,
    simply_supported_deflection,
    first_contact_force,
)
from repro.mechanics.contact import (
    ContactPatch,
    PressureKernel,
    GapContactSolver,
    ContactMap,
)
from repro.mechanics.dynamics import (
    ModalSummary,
    modal_summary,
    natural_frequencies,
    press_transient,
    settling_time,
    stationarity_margin,
)
from repro.mechanics.viscoelastic import StandardLinearSolid
from repro.mechanics.indenter import (
    Indenter,
    LoadCell,
    ActuatedStage,
    GroundTruthRig,
)

__all__ = [
    "Material",
    "ECOFLEX_0030",
    "ECOFLEX_0050",
    "COPPER",
    "FR4",
    "GELATIN_PHANTOM",
    "material_library",
    "BeamSection",
    "CompositeBeam",
    "simply_supported_deflection",
    "first_contact_force",
    "ContactPatch",
    "PressureKernel",
    "GapContactSolver",
    "ContactMap",
    "ModalSummary",
    "modal_summary",
    "natural_frequencies",
    "press_transient",
    "settling_time",
    "stationarity_margin",
    "StandardLinearSolid",
    "Indenter",
    "LoadCell",
    "ActuatedStage",
    "GroundTruthRig",
]
