"""Gap-contact solver: where does the trace short against the ground?

The core mechanical question in WiForce (paper section 3.1): a composite
soft beam is suspended over the ground trace by an air gap ``g``.  A
contact force presses it down; the beam touches ground over a finite
region whose edges are the *shorting points*.  As force grows the edges
spread outward; pressing off-centre makes the spread asymmetric, and the
edge near the closer beam end saturates.  These edge trajectories are
exactly what the RF layer turns into reflected phase.

Two models are provided:

* :class:`GapContactSolver` — finite-difference Euler-Bernoulli beam
  with a unilateral gap constraint, solved with an active-set method.
  The point force is spread into a pressure patch by the soft layer
  (:class:`PressureKernel`), which is what makes the sensor force
  sensitive at all (a bare thin trace collapses to a single contact
  point, Fig. 4a).
* :class:`ContactMap` — a precomputed (force, location) -> (left, right)
  lookup table with bilinear interpolation, for the thousands of
  evaluations the end-to-end experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np
from scipy.linalg import solve_banded

from repro.cache import get_cache
from repro.errors import ConfigurationError, ContactSolverError
from repro.mechanics.beam import CompositeBeam

#: Artifact version of the cached (force, location) edge tables.  Bump
#: whenever the solver, the sampling, or the denoising below changes
#: the numbers a :class:`ContactMap` would produce.
CONTACT_TABLES_VERSION = 1


@dataclass(frozen=True)
class ContactPatch:
    """Result of a contact solve.

    Attributes:
        force: Applied force [N].
        location: Force application point [m] from the beam's left end.
        left: Left shorting point [m], or ``None`` if no contact.
        right: Right shorting point [m], or ``None`` if no contact.
        max_deflection: Peak downward deflection [m].
    """

    force: float
    location: float
    left: Optional[float]
    right: Optional[float]
    max_deflection: float

    @property
    def in_contact(self) -> bool:
        """True when the trace touches the ground trace somewhere."""
        return self.left is not None

    @property
    def width(self) -> float:
        """Contact width [m]; zero when not in contact."""
        if self.left is None or self.right is None:
            return 0.0
        return self.right - self.left


class PressureKernel:
    """Spread a point force into a pressure patch via the soft layer.

    A thick soft layer distributes an indenter's point load over a patch
    on the trace below.  We model the patch with a raised-cosine bump of
    half-width ``a(F) = base_half_width + hertz_coefficient * F**(1/3)``:
    the constant term captures geometric spreading through the layer
    thickness, and the cube-root term the Hertz-like growth of the
    indenter's own contact patch with load.  The kernel integrates to
    the applied force (patches clipped by the beam ends are
    renormalised so no force is lost).
    """

    def __init__(self, base_half_width: float, hertz_coefficient: float = 0.0,
                 reference_force: float = 1.0):
        if base_half_width <= 0.0:
            raise ConfigurationError(
                f"base half width must be positive, got {base_half_width}"
            )
        if hertz_coefficient < 0.0:
            raise ConfigurationError(
                f"hertz coefficient must be non-negative, got {hertz_coefficient}"
            )
        if reference_force <= 0.0:
            raise ConfigurationError(
                f"reference force must be positive, got {reference_force}"
            )
        self._base = float(base_half_width)
        self._hertz = float(hertz_coefficient)
        self._ref = float(reference_force)

    @classmethod
    def for_soft_layer(cls, thickness: float) -> "PressureKernel":
        """Kernel for a soft layer of the given thickness [m].

        Geometric spreading through an incompressible elastomer layer
        gives a patch half-width comparable to the layer thickness; the
        Hertz term adds mild growth with load.
        """
        return cls(base_half_width=0.9 * thickness,
                   hertz_coefficient=0.25 * thickness)

    @classmethod
    def point_like(cls) -> "PressureKernel":
        """Nearly-point kernel modelling a bare thin trace (Fig. 4a)."""
        return cls(base_half_width=0.2e-3, hertz_coefficient=0.0)

    def half_width(self, force: float) -> float:
        """Pressure-patch half-width [m] at the given force [N]."""
        if force < 0.0:
            raise ConfigurationError(f"force must be non-negative, got {force}")
        return self._base + self._hertz * (force / self._ref) ** (1.0 / 3.0)

    def cache_spec(self) -> dict:
        """The kernel's defining parameters (artifact-cache key part)."""
        return {"base_half_width": self._base,
                "hertz_coefficient": self._hertz,
                "reference_force": self._ref}

    def pressure(self, x: np.ndarray, location: float, force: float) -> np.ndarray:
        """Distributed load q(x) [N/m] on the grid ``x`` [m]."""
        x = np.asarray(x, dtype=float)
        if force == 0.0:
            return np.zeros_like(x)
        a = self.half_width(force)
        u = (x - location) / a
        bump = np.where(np.abs(u) < 1.0, np.cos(0.5 * np.pi * u) ** 2, 0.0)
        total = np.trapezoid(bump, x)
        if total <= 0.0:
            # Patch fell between grid nodes; put the force on the
            # nearest node as a discrete load.
            bump = np.zeros_like(x)
            idx = int(np.argmin(np.abs(x - location)))
            bump[idx] = 1.0
            dx = x[1] - x[0]
            return bump * (force / dx)
        return bump * (force / total)


@lru_cache(maxsize=64)
def _assembled_operator(nodes: int, dx: float, bending_stiffness: float,
                        foundation: float
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Assemble the FD bending operator once per (grid, EI, k_f).

    The operator depends only on the grid and the beam's bending
    stiffness — not on the applied load — so one assembly serves every
    ``(force, location)`` solve of a :class:`ContactMap` build *and*
    every solver instance with the same discretisation (Monte-Carlo
    campaigns construct hundreds of them).  Returns read-only
    ``(stencil, banded)`` arrays; per-solve mutation always happens on
    copies.
    """
    n = int(nodes)
    coefficient = bending_stiffness / dx ** 4
    matrix = np.zeros((n, n))
    interior = np.arange(2, n - 2)
    for offset, weight in ((-2, 1.0), (-1, -4.0), (0, 6.0), (1, -4.0),
                           (2, 1.0)):
        matrix[interior, interior + offset] = weight
    # Nodes adjacent to the supports: w''=0 with w=0 at the support
    # implies the ghost value w[-1] = -w[1].
    matrix[1, 1:4] = (5.0, -4.0, 1.0)
    matrix[n - 2, n - 4: n - 1] = (1.0, -4.0, 5.0)
    # Supports themselves are Dirichlet rows (w = 0).
    matrix *= coefficient
    inner = np.arange(1, n - 1)
    matrix[inner, inner] += foundation
    matrix[0, 0] = 1.0
    matrix[n - 1, n - 1] = 1.0
    banded = GapContactSolver._to_banded(matrix)
    matrix.setflags(write=False)
    banded.setflags(write=False)
    return matrix, banded


class GapContactSolver:
    """Finite-difference beam-with-gap contact solver (active set).

    Discretises ``EI w'''' + k_f w = q(x) - lambda(x)`` on a uniform
    grid with simply supported ends (the trace is anchored at the SMA
    connector blocks), subject to the unilateral constraint
    ``w(x) <= gap`` with contact reaction ``lambda >= 0``
    (complementarity).  Downward deflection is positive.

    The ``k_f w`` term is a Winkler foundation modelling the restoring
    action of the thick soft layer: a local press dimples the elastomer
    instead of translating the whole beam, so deflections decay over
    the characteristic length ``(4 EI / k_f)**(1/4)``.  This is what
    keeps off-centre presses from collapsing the entire trace and
    produces the paper's asymmetric edge trajectories (Fig. 5a): the
    long floppy side flattens early (stationary far shorting point)
    while the short stiff side keeps yielding ground gradually.

    The ground is a very stiff unilateral foundation
    (``lambda = k_ground * (w - gap)_+``) and the piecewise-linear
    system is solved by a semi-smooth Newton (primal-dual active set)
    iteration with ground-stiffness continuation, which suppresses the
    even/odd chattering the plain biharmonic operator is prone to.
    """

    #: Hard cap on active-set sweeps per continuation stage.
    MAX_ITERATIONS = 600

    #: Ground-stiffness continuation ladder [N/m^2].  Starting soft
    #: smooths the first active-set estimate; the final value keeps
    #: residual penetration far below the grid resolution that actually
    #: limits edge accuracy.
    GROUND_STIFFNESS_STAGES = (1e6, 1e8, 1e10)

    def __init__(self, beam: CompositeBeam, gap: float,
                 kernel: PressureKernel, nodes: int = 321,
                 foundation_stiffness: float = 0.0):
        if gap <= 0.0:
            raise ConfigurationError(f"gap must be positive, got {gap}")
        if nodes < 16:
            raise ConfigurationError(f"need at least 16 nodes, got {nodes}")
        if foundation_stiffness < 0.0:
            raise ConfigurationError(
                f"foundation stiffness must be non-negative, got "
                f"{foundation_stiffness}"
            )
        self._beam = beam
        self._gap = float(gap)
        self._kernel = kernel
        self._n = int(nodes)
        self._foundation = float(foundation_stiffness)
        self._x = np.linspace(0.0, beam.length, self._n)
        self._dx = self._x[1] - self._x[0]
        self._stencil, self._banded = _assembled_operator(
            self._n, float(self._dx), float(beam.bending_stiffness),
            self._foundation)

    @property
    def grid(self) -> np.ndarray:
        """The solver grid [m] (read-only view)."""
        view = self._x.view()
        view.flags.writeable = False
        return view

    @property
    def gap(self) -> float:
        """Air gap between trace and ground [m]."""
        return self._gap

    @property
    def beam(self) -> CompositeBeam:
        """The beam being solved."""
        return self._beam

    @staticmethod
    def _to_banded(matrix: np.ndarray) -> np.ndarray:
        """Pack the pentadiagonal stencil into solve_banded layout."""
        n = matrix.shape[0]
        banded = np.zeros((5, n))
        for offset in range(-2, 3):
            diagonal = np.diagonal(matrix, offset)
            if offset >= 0:
                banded[2 - offset, offset:] = diagonal
            else:
                banded[2 - offset, : n + offset] = diagonal
        return banded

    @property
    def foundation_stiffness(self) -> float:
        """Winkler foundation stiffness k_f [N/m^2]."""
        return self._foundation

    @property
    def decay_length(self) -> float:
        """Characteristic deflection decay length (4 EI / k_f)^(1/4) [m].

        Infinite when no foundation is configured (pure beam bending).
        """
        if self._foundation == 0.0:
            return float("inf")
        return (4.0 * self._beam.bending_stiffness / self._foundation) ** 0.25

    def cache_spec(self) -> dict:
        """Everything a solve's result depends on, as key material.

        Two solvers with equal specs produce bit-identical
        :meth:`solve` results, so the spec is what content-addresses
        cached :class:`ContactMap` tables.
        """
        return {
            "bending_stiffness": float(self._beam.bending_stiffness),
            "length": float(self._beam.length),
            "gap": self._gap,
            "nodes": self._n,
            "foundation_stiffness": self._foundation,
            "kernel": self._kernel.cache_spec(),
            "ground_stiffness_stages": list(self.GROUND_STIFFNESS_STAGES),
            "max_iterations": self.MAX_ITERATIONS,
        }

    def solve(self, force: float, location: float) -> ContactPatch:
        """Solve the contact problem for a point force.

        Args:
            force: Applied force [N], >= 0.
            location: Application point [m] in [0, beam length].

        Returns:
            The resulting :class:`ContactPatch`.

        Raises:
            ConfigurationError: Invalid force or location.
            ContactSolverError: Active-set iteration did not converge.
        """
        if force < 0.0:
            raise ConfigurationError(f"force must be non-negative, got {force}")
        if not 0.0 <= location <= self._beam.length:
            raise ConfigurationError(
                f"location {location} outside beam [0, {self._beam.length}]"
            )
        if force == 0.0:
            return ContactPatch(force, location, None, None, 0.0)

        n = self._n
        load = self._kernel.pressure(self._x, location, force)
        rhs_free = load.copy()
        rhs_free[0] = 0.0
        rhs_free[n - 1] = 0.0

        active = np.zeros(n, dtype=bool)
        deflection = np.zeros(n)
        for stiffness in self.GROUND_STIFFNESS_STAGES:
            seen = set()
            for _ in range(self.MAX_ITERATIONS):
                banded = self._banded.copy()
                rhs = rhs_free.copy()
                idx = np.flatnonzero(active)
                banded[2, idx] += stiffness
                rhs[idx] += stiffness * self._gap
                deflection = solve_banded((2, 2), banded, rhs)
                # Semi-smooth Newton set update: a node is in contact
                # when its ground-spring force would be compressive.
                new_active = deflection > self._gap
                new_active[0] = new_active[n - 1] = False
                if np.array_equal(new_active, active):
                    break
                key = new_active.tobytes()
                if key in seen:
                    # Chattering between two sets: take their union,
                    # which brackets the true contact set to within one
                    # grid cell, and move to the next stiffness stage.
                    active = active | new_active
                    break
                seen.add(key)
                active = new_active
            else:
                raise ContactSolverError(
                    f"active-set iteration did not converge for "
                    f"force={force} N at {location} m"
                )

        contact_nodes = np.flatnonzero(active)
        if contact_nodes.size == 0:
            return ContactPatch(force, location, None, None,
                                float(deflection.max()))
        # Sub-grid edge localization: the shorting edge is where the
        # deflection crosses the gap, which generally falls between two
        # FD nodes.  Reporting the first active node quantizes the edge
        # to the grid pitch and makes the phase transduction stepped in
        # force; interpolating the crossing keeps it continuous.
        first, last = int(contact_nodes[0]), int(contact_nodes[-1])
        left = float(self._x[first])
        right = float(self._x[last])
        if first > 0 and deflection[first] > deflection[first - 1]:
            fraction = ((self._gap - deflection[first - 1])
                        / (deflection[first] - deflection[first - 1]))
            fraction = min(max(fraction, 0.0), 1.0)
            left = float(self._x[first - 1]
                         + fraction * (self._x[first] - self._x[first - 1]))
        if last < n - 1 and deflection[last] > deflection[last + 1]:
            fraction = ((self._gap - deflection[last + 1])
                        / (deflection[last] - deflection[last + 1]))
            fraction = min(max(fraction, 0.0), 1.0)
            right = float(self._x[last + 1]
                          - fraction * (self._x[last + 1] - self._x[last]))
        return ContactPatch(force, location, left, right,
                            float(deflection.max()))


def _isotonic_non_decreasing(values: np.ndarray) -> np.ndarray:
    """Least-squares non-decreasing fit (pool-adjacent-violators)."""
    level_values = []
    level_weights = []
    for value in np.asarray(values, dtype=float):
        level_values.append(value)
        level_weights.append(1.0)
        while (len(level_values) > 1
               and level_values[-2] > level_values[-1]):
            merged_weight = level_weights[-2] + level_weights[-1]
            merged_value = (level_values[-2] * level_weights[-2]
                            + level_values[-1] * level_weights[-1]
                            ) / merged_weight
            level_values[-2:] = [merged_value]
            level_weights[-2:] = [merged_weight]
    fitted = np.empty(len(values), dtype=float)
    position = 0
    for value, weight in zip(level_values, level_weights):
        count = int(round(weight))
        fitted[position:position + count] = value
        position += count
    return fitted


class ContactMap:
    """Precomputed (force, location) -> shorting-edge lookup table.

    The end-to-end experiments evaluate the transduction thousands of
    times; a dense per-call FD solve would dominate the runtime.  The
    map samples the solver on a (force, location) grid once and then
    answers queries with bilinear interpolation.  Below the first-
    contact force the sensor reports no contact, so the force grid
    starts at a small positive epsilon and queries below the sampled
    contact threshold return an out-of-contact patch.

    The sampled edge tables are deterministic in the solver spec and
    the grids, so the build is memoized through
    :mod:`repro.cache` — any process on the machine that has built an
    identically-parameterized map (an earlier test run, a sibling
    campaign worker) supplies the tables and the FD solve loop is
    skipped entirely.  ``REPRO_CACHE=0`` recomputes, bit-identically.
    """

    def __init__(self, solver: GapContactSolver,
                 max_force: float = 10.0,
                 force_points: int = 48,
                 location_points: int = 65,
                 location_margin: float = 0.05):
        if max_force <= 0.0:
            raise ConfigurationError(f"max force must be positive, got {max_force}")
        self._solver = solver
        length = solver.beam.length
        margin = location_margin * length
        self._forces = np.linspace(max_force / force_points, max_force,
                                   force_points)
        self._locations = np.linspace(margin, length - margin, location_points)
        self._left = np.full((force_points, location_points), np.nan)
        self._right = np.full((force_points, location_points), np.nan)
        self._build()

    def cache_spec(self) -> dict:
        """Key material addressing this map's sampled tables."""
        return {
            "solver": self._solver.cache_spec(),
            "forces": self._forces,
            "locations": self._locations,
        }

    def _build(self) -> None:
        payload = get_cache().get_or_compute(
            "mechanics.contact_tables", CONTACT_TABLES_VERSION,
            self.cache_spec(), self._compute_tables,
            encode=lambda tables: {"left": tables[0],
                                   "right": tables[1]},
            decode=lambda encoded: (
                np.array(encoded["left"], dtype=float),
                np.array(encoded["right"], dtype=float)),
        )
        self._left, self._right = payload

    def _compute_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """The cold path: one FD solve per (force, location) sample."""
        for j, loc in enumerate(self._locations):
            for i, force in enumerate(self._forces):
                patch = self._solver.solve(float(force), float(loc))
                if patch.in_contact:
                    self._left[i, j] = patch.left
                    self._right[i, j] = patch.right
        self._denoise()
        return self._left, self._right

    def _denoise(self) -> None:
        """Regularize the sampled edge tables along the force axis.

        Physically the contact region only widens as force grows, so at
        a fixed location the left edge is non-increasing and the right
        edge non-decreasing in force.  The active-set solver's converged
        contact set can chatter by a node or two where the beam meets
        the gap near-tangentially, which shows up as non-monotone
        sub-millimetre jitter in the sampled edges — noise the phase
        transduction amplifies.  A three-point average followed by an
        isotonic (monotone least-squares) projection removes the
        chatter while preserving the physical trend.
        """
        for table, orientation in ((self._left, -1.0), (self._right, 1.0)):
            for j in range(table.shape[1]):
                column = table[:, j]
                valid = ~np.isnan(column)
                if int(valid.sum()) < 3:
                    continue
                values = column[valid] * orientation
                smoothed = values.copy()
                smoothed[1:-1] = (values[:-2] + values[1:-1]
                                  + values[2:]) / 3.0
                column[valid] = (_isotonic_non_decreasing(smoothed)
                                 * orientation)

    @property
    def max_force(self) -> float:
        """Largest tabulated force [N]."""
        return float(self._forces[-1])

    @property
    def location_range(self) -> Tuple[float, float]:
        """Tabulated location span [m]."""
        return float(self._locations[0]), float(self._locations[-1])

    def edges(self, force: float, location: float) -> ContactPatch:
        """Interpolated shorting edges for a (force, location) query.

        Queries outside the tabulated grid are clipped to its hull; a
        query below the local contact threshold returns a patch with
        ``in_contact`` False.
        """
        if force < 0.0:
            raise ConfigurationError(f"force must be non-negative, got {force}")
        if force < self._forces[0]:
            # Below the first tabulated force the map cannot resolve the
            # contact threshold; report no contact (the untouched state).
            return ContactPatch(force, location, None, None, 0.0)
        f = float(np.clip(force, self._forces[0], self._forces[-1]))
        loc = float(np.clip(location, self._locations[0], self._locations[-1]))
        i = int(np.searchsorted(self._forces, f) - 1)
        i = max(0, min(i, len(self._forces) - 2))
        j = int(np.searchsorted(self._locations, loc) - 1)
        j = max(0, min(j, len(self._locations) - 2))
        ti = (f - self._forces[i]) / (self._forces[i + 1] - self._forces[i])
        tj = (loc - self._locations[j]) / (
            self._locations[j + 1] - self._locations[j])

        def _interp(table: np.ndarray) -> float:
            corners = table[i: i + 2, j: j + 2]
            if np.isnan(corners).any():
                return float("nan")
            row0 = corners[0, 0] * (1 - tj) + corners[0, 1] * tj
            row1 = corners[1, 0] * (1 - tj) + corners[1, 1] * tj
            return float(row0 * (1 - ti) + row1 * ti)

        left = _interp(self._left)
        right = _interp(self._right)
        if np.isnan(left) or np.isnan(right):
            return ContactPatch(force, location, None, None, 0.0)
        return ContactPatch(force, location, left, right, self._solver.gap)
