"""Material property database for the sensor mechanics.

Properties are quoted at room temperature.  Elastomer moduli are
small-strain tangent moduli; the contact solver only needs relative
stiffness ratios and a load-spreading length scale, so a linear-elastic
description is sufficient for the force range of the paper (0-8 N).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Material:
    """Linear-elastic material.

    Attributes:
        name: Human-readable identifier.
        youngs_modulus: Young's modulus E [Pa].
        poisson_ratio: Poisson's ratio (dimensionless, in [0, 0.5)).
        density: Mass density [kg/m^3].
    """

    name: str
    youngs_modulus: float
    poisson_ratio: float
    density: float

    def __post_init__(self) -> None:
        if self.youngs_modulus <= 0.0:
            raise ConfigurationError(
                f"{self.name}: Young's modulus must be positive, "
                f"got {self.youngs_modulus}"
            )
        if not 0.0 <= self.poisson_ratio < 0.5:
            raise ConfigurationError(
                f"{self.name}: Poisson ratio must be in [0, 0.5), "
                f"got {self.poisson_ratio}"
            )
        if self.density <= 0.0:
            raise ConfigurationError(
                f"{self.name}: density must be positive, got {self.density}"
            )

    @property
    def shear_modulus(self) -> float:
        """Shear modulus G = E / (2 (1 + nu)) [Pa]."""
        return self.youngs_modulus / (2.0 * (1.0 + self.poisson_ratio))

    @property
    def plane_strain_modulus(self) -> float:
        """Plane-strain modulus E' = E / (1 - nu^2) [Pa], used by the
        contact-patch (Hertz-like) spreading model."""
        return self.youngs_modulus / (1.0 - self.poisson_ratio ** 2)


#: Smooth-On Ecoflex 00-30, the soft beam material of the prototype.
ECOFLEX_0030 = Material(
    name="ecoflex-00-30",
    youngs_modulus=125e3,
    poisson_ratio=0.49,
    density=1070.0,
)

#: Stiffer Ecoflex grade, used in ablations of beam softness.
ECOFLEX_0050 = Material(
    name="ecoflex-00-50",
    youngs_modulus=290e3,
    poisson_ratio=0.49,
    density=1070.0,
)

#: Rolled copper foil of the signal/ground traces.
COPPER = Material(
    name="copper",
    youngs_modulus=117e9,
    poisson_ratio=0.34,
    density=8960.0,
)

#: FR-4 used for rigid mock-ups in ablation experiments.
FR4 = Material(
    name="fr4",
    youngs_modulus=24e9,
    poisson_ratio=0.14,
    density=1850.0,
)

#: Gelatin tissue phantom bulk (mechanical, for indenter-through-phantom
#: scenarios; the RF properties live in repro.channel.tissue).
GELATIN_PHANTOM = Material(
    name="gelatin-phantom",
    youngs_modulus=20e3,
    poisson_ratio=0.45,
    density=1030.0,
)

_LIBRARY: Dict[str, Material] = {
    mat.name: mat
    for mat in (ECOFLEX_0030, ECOFLEX_0050, COPPER, FR4, GELATIN_PHANTOM)
}


def material_library() -> Dict[str, Material]:
    """Return a copy of the built-in material library keyed by name."""
    return dict(_LIBRARY)
