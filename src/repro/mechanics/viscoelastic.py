"""Elastomer viscoelasticity: creep under a held press.

Silicone elastomers are not perfectly elastic — under a sustained load
the effective modulus relaxes (standard-linear-solid behaviour), the
contact region keeps spreading for a fraction of a second, and the
reflected phase creeps before settling.  This is the physical origin of
the paper's "0.5-1 s to stabilize" remark (section 3.3) and it bounds
how soon after touch onset a reading should be trusted.

The model here is the material law: a Prony-series standard linear
solid.  The sensor-level wrapper that evaluates the contact problem at
relaxed moduli lives in :mod:`repro.sensor.viscoelastic` (it depends on
the sensor design and would be a circular import from here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StandardLinearSolid:
    """One-branch Prony series (standard linear solid).

    ``E(t) = E_inf + (E_0 - E_inf) exp(-t / tau)``

    Attributes:
        instantaneous_modulus: E_0 [Pa] (t = 0 response).
        equilibrium_modulus: E_inf [Pa] (fully relaxed).
        relaxation_time: tau [s].
    """

    instantaneous_modulus: float = 125e3
    equilibrium_modulus: float = 95e3
    relaxation_time: float = 0.35

    def __post_init__(self) -> None:
        if self.equilibrium_modulus <= 0.0:
            raise ConfigurationError("equilibrium modulus must be positive")
        if self.instantaneous_modulus < self.equilibrium_modulus:
            raise ConfigurationError(
                "instantaneous modulus must be >= equilibrium modulus"
            )
        if self.relaxation_time <= 0.0:
            raise ConfigurationError("relaxation time must be positive")

    def modulus(self, hold_time: float) -> float:
        """Relaxed modulus E(t) [Pa] after holding for ``hold_time``."""
        if hold_time < 0.0:
            raise ConfigurationError(
                f"hold time must be >= 0, got {hold_time}"
            )
        decay = np.exp(-hold_time / self.relaxation_time)
        return float(self.equilibrium_modulus
                     + (self.instantaneous_modulus
                        - self.equilibrium_modulus) * decay)

    def settling_time(self, band: float = 0.05) -> float:
        """Time [s] until the modulus is within ``band`` of equilibrium."""
        if not 0.0 < band < 1.0:
            raise ConfigurationError(f"band must be in (0, 1), got {band}")
        return float(-self.relaxation_time * np.log(band))
