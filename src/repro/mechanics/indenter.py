"""Ground-truth rig: actuated indenter + load cell (paper Fig. 11).

The paper grounds its evaluation with an actuated indenter that presses
the sensor at commanded positions while a load cell records the true
force.  This module simulates that rig, including realistic measurement
noise, so the wireless estimates can be scored against a ground truth
that is itself imperfect, exactly as in the physical experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Press:
    """One ground-truth press event.

    Attributes:
        commanded_force: Force the actuator was asked to apply [N].
        applied_force: Force actually applied to the sensor [N].
        measured_force: Load-cell reading [N].
        commanded_location: Commanded press position [m].
        applied_location: Actual press position [m].
    """

    commanded_force: float
    applied_force: float
    measured_force: float
    commanded_location: float
    applied_location: float


class Indenter:
    """Force actuator with a small regulation error.

    Attributes:
        force_noise_std: Std-dev of the applied-force regulation error [N].
        tip_radius: Indenter tip radius [m] (informational; the spreading
            through the soft layer is handled by the pressure kernel).
    """

    def __init__(self, force_noise_std: float = 0.02,
                 tip_radius: float = 1.5e-3,
                 rng: Optional[np.random.Generator] = None):
        if force_noise_std < 0.0:
            raise ConfigurationError(
                f"force noise std must be non-negative, got {force_noise_std}"
            )
        if tip_radius <= 0.0:
            raise ConfigurationError(
                f"tip radius must be positive, got {tip_radius}"
            )
        self.force_noise_std = float(force_noise_std)
        self.tip_radius = float(tip_radius)
        self._rng = rng or np.random.default_rng()

    def apply(self, commanded_force: float) -> float:
        """Return the actually-applied force [N] for a command [N]."""
        if commanded_force < 0.0:
            raise ConfigurationError(
                f"commanded force must be non-negative, got {commanded_force}"
            )
        if commanded_force == 0.0:
            return 0.0
        applied = commanded_force + self._rng.normal(0.0, self.force_noise_std)
        return max(0.0, applied)


class LoadCell:
    """Load cell measuring the true applied force.

    Attributes:
        noise_std: Reading noise std-dev [N].
        full_scale: Saturation limit [N].
    """

    def __init__(self, noise_std: float = 0.01, full_scale: float = 50.0,
                 rng: Optional[np.random.Generator] = None):
        if noise_std < 0.0:
            raise ConfigurationError(
                f"noise std must be non-negative, got {noise_std}"
            )
        if full_scale <= 0.0:
            raise ConfigurationError(
                f"full scale must be positive, got {full_scale}"
            )
        self.noise_std = float(noise_std)
        self.full_scale = float(full_scale)
        self._rng = rng or np.random.default_rng()

    def read(self, applied_force: float) -> float:
        """Return a noisy, saturating reading [N] of the applied force."""
        reading = applied_force + self._rng.normal(0.0, self.noise_std)
        return float(np.clip(reading, 0.0, self.full_scale))


class ActuatedStage:
    """Linear positioning stage carrying the indenter.

    Attributes:
        position_noise_std: Std-dev of the positioning error [m].
        travel: Usable travel range [m].
    """

    def __init__(self, position_noise_std: float = 0.05e-3,
                 travel: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        if position_noise_std < 0.0:
            raise ConfigurationError(
                f"position noise std must be non-negative, got "
                f"{position_noise_std}"
            )
        if travel <= 0.0:
            raise ConfigurationError(f"travel must be positive, got {travel}")
        self.position_noise_std = float(position_noise_std)
        self.travel = float(travel)
        self._rng = rng or np.random.default_rng()

    def move_to(self, commanded_position: float) -> float:
        """Return the actual position [m] reached for a command [m]."""
        if not 0.0 <= commanded_position <= self.travel:
            raise ConfigurationError(
                f"commanded position {commanded_position} outside travel "
                f"[0, {self.travel}]"
            )
        actual = commanded_position + self._rng.normal(
            0.0, self.position_noise_std)
        return float(np.clip(actual, 0.0, self.travel))


class GroundTruthRig:
    """Complete rig: stage + indenter + load cell (paper Fig. 11).

    The rig turns commanded (force, location) pairs into
    :class:`Press` records carrying both the true applied values (fed to
    the sensor simulation) and the noisy measured values (used as the
    experiment's ground truth, as in the paper).
    """

    def __init__(self, indenter: Optional[Indenter] = None,
                 load_cell: Optional[LoadCell] = None,
                 stage: Optional[ActuatedStage] = None,
                 rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng()
        self.indenter = indenter or Indenter(rng=rng)
        self.load_cell = load_cell or LoadCell(rng=rng)
        self.stage = stage or ActuatedStage(rng=rng)

    def press(self, force: float, location: float) -> Press:
        """Execute one press and return the ground-truth record."""
        position = self.stage.move_to(location)
        applied = self.indenter.apply(force)
        measured = self.load_cell.read(applied)
        return Press(
            commanded_force=force,
            applied_force=applied,
            measured_force=measured,
            commanded_location=location,
            applied_location=position,
        )

    def force_sweep(self, forces: Sequence[float],
                    location: float) -> List[Press]:
        """Press with each force in ``forces`` at a fixed location."""
        return [self.press(float(f), location) for f in forces]
