"""Euler-Bernoulli beam models for the sensor's top structure.

The sensor's top structure is a composite beam: a thin copper signal
trace bonded under a thick soft elastomer beam.  The composite bends
under a contact force and its underside (the trace) closes the air gap
to the ground trace.  This module provides section properties, the
classical simply-supported point-load solution (used as an analytic
cross-check of the finite-difference contact solver) and the force at
which the trace first touches the ground.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.mechanics.materials import Material


@dataclass(frozen=True)
class BeamSection:
    """One rectangular layer of a laminated beam cross-section.

    Attributes:
        material: Layer material.
        width: Layer width [m] (transverse to the beam axis).
        thickness: Layer thickness [m] (stacking direction).
    """

    material: Material
    width: float
    thickness: float

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.thickness <= 0.0:
            raise ConfigurationError(
                f"beam section dimensions must be positive, got "
                f"width={self.width}, thickness={self.thickness}"
            )

    @property
    def area(self) -> float:
        """Cross-section area [m^2]."""
        return self.width * self.thickness

    @property
    def self_inertia(self) -> float:
        """Second moment of area about the layer's own centroid [m^4]."""
        return self.width * self.thickness ** 3 / 12.0


class CompositeBeam:
    """Laminated (layered) beam with transformed-section bending stiffness.

    Layers are stacked bottom-up in the order given.  The effective
    bending stiffness EI is computed with the transformed-section method
    about the modulus-weighted neutral axis, which is the standard way
    to treat a metal trace bonded to an elastomer slab.
    """

    def __init__(self, layers: Iterable[BeamSection], length: float):
        self._layers: List[BeamSection] = list(layers)
        if not self._layers:
            raise ConfigurationError("a composite beam needs at least one layer")
        if length <= 0.0:
            raise ConfigurationError(f"beam length must be positive, got {length}")
        self._length = float(length)
        self._bending_stiffness, self._neutral_axis = self._transformed_section()

    def _transformed_section(self) -> Tuple[float, float]:
        """Return (EI [N m^2], neutral axis height from the bottom [m])."""
        heights = []
        z = 0.0
        for layer in self._layers:
            heights.append((z, z + layer.thickness))
            z += layer.thickness
        weights = [
            layer.material.youngs_modulus * layer.area for layer in self._layers
        ]
        centroids = [0.5 * (lo + hi) for lo, hi in heights]
        neutral = sum(w * c for w, c in zip(weights, centroids)) / sum(weights)
        stiffness = 0.0
        for layer, (lo, hi) in zip(self._layers, heights):
            centroid = 0.5 * (lo + hi)
            stiffness += layer.material.youngs_modulus * (
                layer.self_inertia + layer.area * (centroid - neutral) ** 2
            )
        return stiffness, neutral

    @property
    def layers(self) -> Tuple[BeamSection, ...]:
        """The layer stack, bottom-up."""
        return tuple(self._layers)

    @property
    def length(self) -> float:
        """Beam span [m]."""
        return self._length

    @property
    def bending_stiffness(self) -> float:
        """Effective bending stiffness EI [N m^2]."""
        return self._bending_stiffness

    @property
    def neutral_axis(self) -> float:
        """Neutral-axis height from the bottom face [m]."""
        return self._neutral_axis

    @property
    def total_thickness(self) -> float:
        """Total laminate thickness [m]."""
        return sum(layer.thickness for layer in self._layers)

    @property
    def mass_per_length(self) -> float:
        """Mass per unit length [kg/m]."""
        return sum(layer.material.density * layer.area for layer in self._layers)


def simply_supported_deflection(
    x: np.ndarray, load_position: float, force: float, length: float,
    bending_stiffness: float,
) -> np.ndarray:
    """Deflection of a simply supported beam under a point load.

    Classical Euler-Bernoulli solution; downward load gives positive
    deflection values here (deflection towards the ground trace).

    Args:
        x: Positions along the beam [m], each in [0, length].
        load_position: Point-load position a [m].
        force: Load magnitude F [N] (positive = pressing down).
        length: Beam span L [m].
        bending_stiffness: EI [N m^2].

    Returns:
        Deflection w(x) [m], positive towards the gap.
    """
    if not 0.0 <= load_position <= length:
        raise ConfigurationError(
            f"load position {load_position} outside beam [0, {length}]"
        )
    if bending_stiffness <= 0.0:
        raise ConfigurationError("bending stiffness must be positive")
    x = np.asarray(x, dtype=float)
    a = load_position
    b = length - a
    w = np.empty_like(x)
    left = x <= a
    xl = x[left]
    w[left] = (
        force * b * xl * (length ** 2 - b ** 2 - xl ** 2)
        / (6.0 * length * bending_stiffness)
    )
    xr = x[~left]
    # Mirror the standard solution for points right of the load.
    xr_m = length - xr
    w[~left] = (
        force * a * xr_m * (length ** 2 - a ** 2 - xr_m ** 2)
        / (6.0 * length * bending_stiffness)
    )
    return w


def first_contact_force(
    load_position: float, length: float, bending_stiffness: float, gap: float,
) -> float:
    """Force [N] at which the trace first touches the ground trace.

    For a simply supported beam pressed at ``load_position`` the maximum
    deflection occurs near the load; contact begins when it reaches the
    air gap.  Solved from the analytic deflection profile.
    """
    if gap <= 0.0:
        raise ConfigurationError(f"gap must be positive, got {gap}")
    x = np.linspace(0.0, length, 2001)
    unit = simply_supported_deflection(x, load_position, 1.0, length,
                                       bending_stiffness)
    peak = float(unit.max())
    if peak <= 0.0:
        raise ConfigurationError("degenerate beam: no deflection under load")
    return gap / peak
