"""Reader substrate tests: waveform, OFDM modem, sounders, front end.

Includes the key cross-validation: the fast frame-level sounder's
noise model must match the sample-level OFDM modem.
"""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel, Path
from repro.channel.propagation import BackscatterLink
from repro.errors import ConfigurationError, DynamicRangeError, ReaderError
from repro.reader.fmcw import FMCWSounder, FMCWSounderConfig
from repro.reader.frontend import SDRFrontEnd, USRP_N210
from repro.reader.ofdm import OFDMModem
from repro.reader.sounder import ChannelEstimateStream, FrameLevelSounder
from repro.reader.waveform import (
    OFDMSounderConfig,
    generate_preamble,
    preamble_tones,
)
from repro.sensor.tag import TagState, WiForceTag


@pytest.fixture(scope="module")
def config():
    return OFDMSounderConfig(carrier_frequency=900e6)


class TestWaveformConfig:
    def test_paper_frame_period(self, config):
        """320 + 400 samples at 12.5 MHz = 57.6 us (paper's ~60 us)."""
        assert config.frame_period == pytest.approx(57.6e-6)

    def test_paper_subcarrier_spacing(self, config):
        assert config.subcarrier_spacing == pytest.approx(195.3125e3)

    def test_paper_nyquist_limit(self, config):
        """1/(2T) ~ 8.7 kHz: the 1 and 4 kHz tones fit comfortably."""
        assert config.max_harmonic_frequency == pytest.approx(8680.6, abs=1.0)

    def test_preamble_length(self, config):
        assert config.preamble_samples == 320
        assert config.frame_samples == 720

    def test_subcarrier_frequencies_span_band(self, config):
        tones = config.subcarrier_frequencies()
        assert tones.size == 64
        assert tones[0] == pytest.approx(900e6 - 32 * 195.3125e3)
        assert np.all(np.diff(tones) > 0)

    def test_frame_times(self, config):
        times = config.frame_times(3)
        np.testing.assert_allclose(np.diff(times), config.frame_period)

    def test_tx_amplitude(self, config):
        assert config.tx_amplitude == pytest.approx(np.sqrt(10e-3), rel=1e-6)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            OFDMSounderConfig(subcarriers=60)

    def test_rejects_bandwidth_above_carrier(self):
        with pytest.raises(ConfigurationError):
            OFDMSounderConfig(carrier_frequency=1e6, bandwidth=12.5e6)

    def test_preamble_power(self, config):
        preamble = generate_preamble(config)
        power = np.mean(np.abs(preamble) ** 2)
        assert power == pytest.approx(config.tx_amplitude ** 2, rel=1e-9)

    def test_preamble_deterministic(self, config):
        np.testing.assert_array_equal(generate_preamble(config),
                                      generate_preamble(config))

    def test_preamble_tones_unit_magnitude(self, config):
        tones = preamble_tones(config)
        np.testing.assert_allclose(np.abs(tones), 1.0)


class TestOFDMModem:
    def test_noiseless_recovery_exact(self, config, rng):
        modem_quiet = OFDMModem(config, noise_figure_db=-300.0, rng=rng)
        channel = np.exp(1j * np.linspace(0.0, 2.0, config.subcarriers))
        estimate = modem_quiet.sound_once(channel)
        np.testing.assert_allclose(estimate, channel, atol=1e-6)

    def test_noisy_recovery_close(self, config, rng):
        modem = OFDMModem(config, rng=rng)
        channel = 1e-2 * np.exp(1j * np.linspace(0.0, 2.0,
                                                 config.subcarriers))
        estimate = modem.sound_once(channel)
        np.testing.assert_allclose(estimate, channel, atol=1e-4)

    def test_noise_matches_analytic_prediction(self, config, rng):
        """Cross-validation: Monte-Carlo modem noise == analytic std."""
        modem = OFDMModem(config, rng=rng)
        channel = np.zeros(config.subcarriers, dtype=complex)
        residuals = np.concatenate([
            modem.sound_once(channel) for _ in range(50)])
        measured = np.sqrt(np.mean(np.abs(residuals) ** 2))
        assert measured == pytest.approx(modem.estimate_noise_std(), rel=0.1)

    def test_frame_sounder_noise_matches_modem(self, config, rng,
                                               transducer):
        """The frame-level sounder must inject the same noise level the
        sample-level modem would produce."""
        modem = OFDMModem(config, rng=rng)
        tag = WiForceTag(transducer)
        link = BackscatterLink()
        sounder = FrameLevelSounder(config, tag, link, rng=rng)
        assert sounder.thermal_noise_std() == pytest.approx(
            modem.estimate_noise_std(), rel=1e-6)

    def test_rejects_wrong_channel_shape(self, config, rng):
        modem = OFDMModem(config, rng=rng)
        with pytest.raises(ReaderError):
            modem.received_preamble(np.zeros(10))

    def test_rejects_wrong_received_shape(self, config, rng):
        modem = OFDMModem(config, rng=rng)
        with pytest.raises(ReaderError):
            modem.estimate_channel(np.zeros(100))


class TestFrameLevelSounder:
    @pytest.fixture()
    def sounder(self, config, transducer, rng):
        tag = WiForceTag(transducer)
        link = BackscatterLink()
        clutter = MultipathChannel([Path(2e-3, 8e-9), Path(1e-3j, 15e-9)])
        return FrameLevelSounder(config, tag, link, clutter, rng=rng)

    def test_capture_shapes(self, sounder):
        stream = sounder.capture(TagState(), 100)
        assert stream.estimates.shape == (100, 64)
        assert stream.times.shape == (100,)
        assert stream.frames == 100

    def test_start_time_offsets_capture(self, sounder):
        stream = sounder.capture(TagState(), 10, start_time=1.0)
        assert stream.times[0] == pytest.approx(1.0)

    def test_static_part_constant_when_tag_quiet(self, config, transducer):
        # With zero noise and a frozen switch state, estimates repeat.
        tag = WiForceTag(transducer)
        link = BackscatterLink()
        ideal_adc = SDRFrontEnd(dynamic_range_db=400.0)
        sounder = FrameLevelSounder(config, tag, link,
                                    front_end=ideal_adc,
                                    noise_figure_db=-300.0,
                                    tag_phase_jitter_deg_per_sqrt_s=0.0)
        stream = sounder.capture(TagState(), 5)
        # All frames within clock1's first on-window (0..250 us).
        np.testing.assert_allclose(stream.estimates[1:],
                                   stream.estimates[:-1])

    def test_tone_visible_in_capture(self, sounder, config):
        """The 1 kHz switching tone must appear in the snapshot FFT."""
        stream = sounder.capture(TagState(), 1250)
        spectrum = np.abs(np.fft.fft(
            stream.estimates - stream.estimates.mean(axis=0), axis=0))
        frequencies = np.fft.fftfreq(1250, d=config.frame_period)
        tone_bin = int(np.argmin(np.abs(frequencies - 1e3)))
        off_bin = int(np.argmin(np.abs(frequencies - 2.5e3)))
        assert (spectrum[tone_bin].mean()
                > 5.0 * spectrum[off_bin].mean())

    def test_snr_decreases_with_distance(self, config, transducer, rng):
        tag = WiForceTag(transducer)
        near = FrameLevelSounder(config, tag, BackscatterLink(), rng=rng)
        far_link = BackscatterLink(tx_to_tag=3.0, tag_to_rx=3.0,
                                   tx_to_rx=6.0)
        far = FrameLevelSounder(config, tag, far_link, rng=rng)
        assert (near.backscatter_snr_db(TagState())
                > far.backscatter_snr_db(TagState()))

    def test_stream_validation(self):
        with pytest.raises(ValueError):
            ChannelEstimateStream(
                estimates=np.zeros((3, 4), dtype=complex),
                times=np.zeros(2),
                frequencies=np.zeros(4),
                frame_period=1e-3,
            )


class TestDynamicRange:
    def test_strong_direct_path_saturates(self, config, transducer, rng):
        """The section 5.2 effect: direct path >> backscatter means the
        quantizer buries the tag."""
        tag = WiForceTag(transducer)
        link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0,
                               tag_blockage_db=40.0)
        sounder = FrameLevelSounder(config, tag, link, rng=rng)
        with pytest.raises(DynamicRangeError):
            sounder.assert_decodable(TagState(4.0, 0.06), min_snr_db=10.0)

    def test_blocking_direct_path_restores_decodability(self, config,
                                                        transducer, rng):
        tag = WiForceTag(transducer)
        link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0,
                               tag_blockage_db=30.0,
                               direct_blockage_db=45.0)
        sounder = FrameLevelSounder(config, tag, link, rng=rng)
        sounder.assert_decodable(TagState(4.0, 0.06), min_snr_db=10.0)

    def test_quantization_floor_formula(self):
        front_end = SDRFrontEnd(dynamic_range_db=60.0)
        floor = front_end.quantization_floor_amplitude(1.0)
        assert floor == pytest.approx(1e-3)

    def test_usrp_limits(self):
        assert USRP_N210.dynamic_range_db == pytest.approx(60.0)
        with pytest.raises(ConfigurationError):
            USRP_N210.check_tx_power(30.0)

    def test_front_end_rejects_bad_dynamic_range(self):
        with pytest.raises(ConfigurationError):
            SDRFrontEnd(dynamic_range_db=0.0)


class TestFMCW:
    @pytest.fixture()
    def fmcw(self, transducer, rng):
        tag = WiForceTag(transducer)
        config = FMCWSounderConfig(carrier_frequency=900e6)
        return FMCWSounder(config, tag, BackscatterLink(), rng=rng)

    def test_config_step_spacing(self):
        config = FMCWSounderConfig()
        assert config.step_spacing == pytest.approx(12.5e6 / 64)

    def test_nyquist(self):
        config = FMCWSounderConfig(sweep_period=57.6e-6)
        assert config.max_harmonic_frequency == pytest.approx(8680.6, abs=1.0)

    def test_capture_shape(self, fmcw):
        stream = fmcw.capture(TagState(), 20)
        assert stream.estimates.shape == (20, 64)

    def test_tone_visible(self, fmcw):
        stream = fmcw.capture(TagState(), 1250)
        spectrum = np.abs(np.fft.fft(
            stream.estimates - stream.estimates.mean(axis=0), axis=0))
        frequencies = np.fft.fftfreq(1250, d=stream.frame_period)
        tone_bin = int(np.argmin(np.abs(frequencies - 1e3)))
        off_bin = int(np.argmin(np.abs(frequencies - 2.7e3)))
        assert spectrum[tone_bin].mean() > 5.0 * spectrum[off_bin].mean()

    def test_rejects_bad_sweeps(self, fmcw):
        with pytest.raises(ConfigurationError):
            fmcw.capture(TagState(), 0)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            FMCWSounderConfig(steps=1)
