"""Ground-truth rig (indenter/load cell/stage) tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mechanics.indenter import (
    ActuatedStage,
    GroundTruthRig,
    Indenter,
    LoadCell,
)


class TestIndenter:
    def test_zero_command_zero_force(self, rng):
        indenter = Indenter(rng=rng)
        assert indenter.apply(0.0) == 0.0

    def test_applied_near_commanded(self, rng):
        indenter = Indenter(force_noise_std=0.02, rng=rng)
        applied = np.array([indenter.apply(3.0) for _ in range(200)])
        assert applied.mean() == pytest.approx(3.0, abs=0.01)
        assert applied.std() == pytest.approx(0.02, rel=0.3)

    def test_never_negative(self, rng):
        indenter = Indenter(force_noise_std=0.5, rng=rng)
        assert all(indenter.apply(0.01) >= 0.0 for _ in range(100))

    def test_rejects_negative_command(self, rng):
        with pytest.raises(ConfigurationError):
            Indenter(rng=rng).apply(-1.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            Indenter(force_noise_std=-0.1)

    def test_deterministic_with_zero_noise(self, rng):
        indenter = Indenter(force_noise_std=0.0, rng=rng)
        assert indenter.apply(2.5) == 2.5


class TestLoadCell:
    def test_reading_near_truth(self, rng):
        cell = LoadCell(noise_std=0.01, rng=rng)
        readings = np.array([cell.read(4.0) for _ in range(200)])
        assert readings.mean() == pytest.approx(4.0, abs=0.005)

    def test_saturates_at_full_scale(self, rng):
        cell = LoadCell(noise_std=0.0, full_scale=10.0, rng=rng)
        assert cell.read(100.0) == 10.0

    def test_never_negative(self, rng):
        cell = LoadCell(noise_std=1.0, rng=rng)
        assert all(cell.read(0.0) >= 0.0 for _ in range(100))

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            LoadCell(noise_std=-1.0)

    def test_rejects_zero_full_scale(self):
        with pytest.raises(ConfigurationError):
            LoadCell(full_scale=0.0)


class TestActuatedStage:
    def test_position_near_command(self, rng):
        stage = ActuatedStage(position_noise_std=0.05e-3, rng=rng)
        positions = np.array([stage.move_to(0.04) for _ in range(200)])
        assert positions.mean() == pytest.approx(0.04, abs=0.02e-3)

    def test_rejects_outside_travel(self, rng):
        with pytest.raises(ConfigurationError):
            ActuatedStage(rng=rng).move_to(1.0)

    def test_clips_to_travel(self, rng):
        stage = ActuatedStage(position_noise_std=1.0, travel=0.1, rng=rng)
        assert all(0.0 <= stage.move_to(0.05) <= 0.1 for _ in range(50))

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            ActuatedStage(position_noise_std=-1.0)


class TestGroundTruthRig:
    def test_press_record_fields(self, rng):
        rig = GroundTruthRig(rng=rng)
        press = rig.press(3.0, 0.04)
        assert press.commanded_force == 3.0
        assert press.commanded_location == 0.04
        assert press.applied_force == pytest.approx(3.0, abs=0.2)
        assert press.measured_force == pytest.approx(press.applied_force,
                                                     abs=0.1)
        assert press.applied_location == pytest.approx(0.04, abs=0.5e-3)

    def test_force_sweep_length(self, rng):
        rig = GroundTruthRig(rng=rng)
        presses = rig.force_sweep([1.0, 2.0, 3.0], 0.04)
        assert [p.commanded_force for p in presses] == [1.0, 2.0, 3.0]

    def test_load_cell_tracks_applied_not_commanded(self, rng):
        rig = GroundTruthRig(
            indenter=Indenter(force_noise_std=0.5, rng=rng),
            load_cell=LoadCell(noise_std=1e-6, rng=rng),
            rng=rng,
        )
        press = rig.press(3.0, 0.04)
        assert press.measured_force == pytest.approx(press.applied_force,
                                                     abs=1e-4)
