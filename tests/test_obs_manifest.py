"""Run manifests: git SHA, config hashing, report stamping."""

from __future__ import annotations

import json

from repro.obs import (
    SCHEMA_VERSION,
    Registry,
    config_hash,
    git_sha,
    run_manifest,
    stamp_report,
)


class TestGitSha:
    def test_resolves_in_this_repo(self):
        sha = git_sha()
        assert sha != "unknown"
        assert len(sha) == 40
        int(sha, 16)  # hex

    def test_unknown_outside_git(self, tmp_path):
        assert git_sha(tmp_path) == "unknown"


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert (config_hash({"a": 1, "b": 2})
                == config_hash({"b": 2, "a": 1}))

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_empty_is_none(self):
        assert config_hash(None) == "none"
        assert config_hash({}) == "none"

    def test_short_hex(self):
        digest = config_hash({"n_samples": 1000})
        assert len(digest) == 16
        int(digest, 16)

    def test_exotic_values_fall_back_to_str(self):
        digest = config_hash({"path": object()})
        assert digest != "none"


class TestRunManifest:
    def test_fields_present(self):
        manifest = run_manifest(config={"x": 1})
        assert manifest["git_sha"] != ""
        assert manifest["config_hash"] == config_hash({"x": 1})
        assert manifest["created_unix"] > 0
        assert manifest["python_version"].count(".") >= 1
        assert manifest["platform"]
        assert manifest["instruments"] is None

    def test_includes_registry_snapshot(self):
        registry = Registry()
        registry.counter("c").increment(2)
        manifest = run_manifest(registry=registry)
        assert manifest["instruments"]["counters"]["c"] == 2

    def test_is_json_serialisable(self):
        registry = Registry()
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        text = json.dumps(run_manifest(config={"a": 1},
                                       registry=registry))
        assert "config_hash" in text


class TestStampReport:
    def test_stamps_in_place_and_returns(self):
        report = {"throughput_rps": 100.0}
        stamped = stamp_report(report, config={"k": 1})
        assert stamped is report
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["manifest"]["config_hash"] == config_hash({"k": 1})
        assert report["throughput_rps"] == 100.0

    def test_existing_keys_preserved(self):
        report = {"service": {"throughput_rps": 1.0}}
        stamp_report(report)
        assert report["service"] == {"throughput_rps": 1.0}
        assert report["manifest"]["config_hash"] == "none"
