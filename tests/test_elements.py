"""Sensor RF element tests: the shorted line is the transducer."""

import numpy as np
import pytest

from repro.errors import RFError
from repro.rf.elements import (
    ideal_splitter_reflection,
    line_twoport,
    shorted_sensor_twoport,
)

FREQ = np.array([900e6, 2.4e9])


class TestLineTwoport:
    def test_untouched_sensor_well_matched(self, line):
        network = line_twoport(line, FREQ)
        assert np.all(np.abs(network.s11) < 10 ** (-10.0 / 20.0))

    def test_through_phase_matches_length(self, line):
        network = line_twoport(line, np.array([2.4e9]))
        expected = -float(line.phase_constant(2.4e9)) * line.length
        measured = float(np.angle(network.s21[0]))
        assert np.angle(np.exp(1j * (measured - expected))) == pytest.approx(
            0.0, abs=0.05)

    def test_partial_length(self, line):
        network = line_twoport(line, np.array([2.4e9]), length=0.02)
        expected = -float(line.phase_constant(2.4e9)) * 0.02
        assert np.angle(network.s21[0]) == pytest.approx(expected, abs=0.05)

    def test_rejects_negative_length(self, line):
        with pytest.raises(RFError):
            line_twoport(line, FREQ, length=-0.01)


class TestShortedSensor:
    def test_none_means_untouched(self, line):
        shorted = shorted_sensor_twoport(line, FREQ, None)
        plain = line_twoport(line, FREQ)
        np.testing.assert_allclose(shorted.s, plain.s)

    def test_short_kills_transmission(self, line):
        network = shorted_sensor_twoport(line, FREQ, (0.02, 0.028))
        assert np.all(np.abs(network.s21) < 0.1)

    def test_port1_sees_short_at_p1(self, line):
        """S11 of the pressed sensor is the shorted-stub reflection:
        -exp(-2 gamma p1), to within the small contact resistance."""
        p1 = 0.02
        network = shorted_sensor_twoport(line, np.array([2.4e9]), (p1, 0.03))
        beta = float(line.phase_constant(2.4e9))
        expected_phase = np.angle(-np.exp(-2j * beta * p1))
        measured = float(np.angle(network.s11[0]))
        assert np.angle(np.exp(1j * (measured - expected_phase))
                        ) == pytest.approx(0.0, abs=0.25)

    def test_port2_sees_short_at_p2(self, line):
        p2 = 0.055
        network = shorted_sensor_twoport(line, np.array([2.4e9]), (0.045, p2))
        beta = float(line.phase_constant(2.4e9))
        back = line.length - p2
        expected_phase = np.angle(-np.exp(-2j * beta * back))
        measured = float(np.angle(network.s22[0]))
        assert np.angle(np.exp(1j * (measured - expected_phase))
                        ) == pytest.approx(0.0, abs=0.25)

    def test_shifting_short_shifts_phase_at_expected_rate(self, line):
        """1 mm of shorting-point travel = 2 beta mm of phase."""
        base = shorted_sensor_twoport(line, np.array([2.4e9]), (0.020, 0.030))
        moved = shorted_sensor_twoport(line, np.array([2.4e9]), (0.021, 0.030))
        delta = np.angle(moved.s11[0] * np.conj(base.s11[0]))
        expected = -2.0 * float(line.phase_constant(2.4e9)) * 1e-3
        assert delta == pytest.approx(expected, rel=0.15)

    def test_reflection_magnitude_near_unity(self, line):
        network = shorted_sensor_twoport(line, FREQ, (0.02, 0.03))
        assert np.all(np.abs(network.s11) > 0.9)

    def test_point_contact_allowed(self, line):
        network = shorted_sensor_twoport(line, FREQ, (0.04, 0.04))
        assert np.all(np.abs(network.s11) > 0.9)

    def test_rejects_unordered_points(self, line):
        with pytest.raises(RFError):
            shorted_sensor_twoport(line, FREQ, (0.05, 0.02))

    def test_rejects_points_outside_line(self, line):
        with pytest.raises(RFError):
            shorted_sensor_twoport(line, FREQ, (0.02, 0.09))

    def test_rejects_nonpositive_contact_resistance(self, line):
        with pytest.raises(RFError):
            shorted_sensor_twoport(line, FREQ, (0.02, 0.03),
                                   contact_resistance=0.0)


class TestSplitter:
    def test_averages_branches(self):
        a = np.array([1.0 + 0j])
        b = np.array([0.0 + 0j])
        assert ideal_splitter_reflection(a, b)[0] == pytest.approx(0.5)

    def test_equal_branches_pass_through(self):
        a = np.array([0.3 + 0.4j])
        assert ideal_splitter_reflection(a, a)[0] == pytest.approx(a[0])

    def test_magnitude_bounded(self):
        a = np.exp(1j * np.linspace(0, 2 * np.pi, 16))
        b = np.exp(-1j * np.linspace(0, 2 * np.pi, 16))
        assert np.all(np.abs(ideal_splitter_reflection(a, b)) <= 1.0 + 1e-12)
