"""Persistent warm-pool lifecycle for the campaign executor.

PR 1 gave campaigns process sharding; the warm-pool layer makes it
pay: one module-level ``ProcessPoolExecutor`` per ``(workers, warmup)``
key is reused across ``run()`` calls, trials ship in chunks, and the
parent's fault plan / observation flag travel in the chunk payload so
a pool forked long ago behaves bit-identically to a fresh one.  These
tests pin the lifecycle (spawn / reuse / discard / shutdown), the
bit-identical-to-serial contract on a warm pool, the SIGKILL respawn
path *through a reused pool*, the ``REPRO_WORKERS=0`` kill switch, and
telemetry homecoming from workers that predate the parent's registry.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.experiments.parallel import (
    CampaignExecutor,
    discard_pool,
    get_pool,
    pool_stats,
    resolve_workers,
    shutdown_pools,
)
from repro.faults import FaultPlan, FaultSpec, inject
from repro.obs.registry import observed

needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash faults reach workers via the payload fault plan, "
           "but the suite assumes cheap fork-started pools",
)


@pytest.fixture(autouse=True)
def clean_pools():
    """Every test starts and ends with no live persistent pools."""
    shutdown_pools()
    yield
    shutdown_pools()


def _square(value):
    """Module-level trial (picklable by reference)."""
    return value * value


def _crash_plan(*indices):
    return FaultPlan(name="crash", specs=(
        FaultSpec(site="experiments.parallel", kind="crash",
                  schedule=tuple(indices)),))


def _instrumented_trial(value):
    """Trial that records counters/histograms in its worker."""
    from repro.obs.registry import active

    obs = active()
    if obs is not None:
        obs.counter("trial.units").increment(value)
        obs.histogram("trial.value", (2.0, 5.0)).observe(float(value))
    return value


class TestPoolLifecycle:
    def test_pool_is_reused_across_runs(self):
        arguments = [(value,) for value in range(8)]
        executor = CampaignExecutor(workers=2)
        before = pool_stats()
        first = executor.run(_square, arguments)
        second = executor.run(_square, arguments)
        if first.mode != "parallel":
            pytest.skip(f"pool unavailable: {first.fallback_reason}")
        after = pool_stats()
        assert after["spawns"] == before["spawns"] + 1
        assert after["reuses"] >= before["reuses"] + 1
        assert after["live"] == 1
        assert first.pool_reused is False
        assert second.pool_reused is True
        assert first.results == second.results

    def test_get_pool_returns_same_executor_for_same_key(self):
        pool = get_pool(2)
        assert get_pool(2) is pool
        # A different warmup spec is a different pool key.
        other = get_pool(2, warmup=((900e6, True),))
        assert other is not pool

    def test_discard_and_shutdown(self):
        get_pool(2)
        assert discard_pool(2) is True
        assert discard_pool(2) is False
        get_pool(2)
        get_pool(3)
        assert shutdown_pools() == 2
        assert pool_stats()["live"] == 0
        assert shutdown_pools() == 0

    def test_non_persistent_run_leaves_no_live_pool(self):
        executor = CampaignExecutor(workers=2, persistent=False)
        execution = executor.run(_square, [(value,) for value in range(4)])
        assert execution.results == [0, 1, 4, 9]
        assert pool_stats()["live"] == 0

    def test_chunk_size_defaults_to_two_waves_per_worker(self):
        executor = CampaignExecutor(workers=2)
        assert executor._resolve_chunk(8) == 2
        assert executor._resolve_chunk(3) == 1
        assert CampaignExecutor(workers=2,
                                chunk_size=5)._resolve_chunk(100) == 5

    def test_chunk_size_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignExecutor(workers=2, chunk_size=0)


class TestWarmPoolParity:
    def test_warm_pool_bit_identical_to_cold_serial(self):
        arguments = [(value,) for value in range(12)]
        serial = CampaignExecutor(workers=1).run(_square, arguments)
        assert serial.mode == "serial"
        executor = CampaignExecutor(workers=3)
        cold = executor.run(_square, arguments)
        warm = executor.run(_square, arguments)
        if cold.mode != "parallel":
            pytest.skip(f"pool unavailable: {cold.fallback_reason}")
        assert warm.pool_reused is True
        assert cold.results == serial.results
        assert warm.results == serial.results

    @needs_fork
    def test_respawn_after_sigkill_on_reused_pool(self):
        # Warm the persistent pool with an unarmed campaign first —
        # its workers were forked with *no* fault plan, so the crash
        # below can only reach them through the chunk payload.
        executor = CampaignExecutor(workers=2)
        arguments = [(value,) for value in range(8)]
        warmup_run = executor.run(_square, arguments)
        if warmup_run.mode != "parallel":
            pytest.skip(f"pool unavailable: {warmup_run.fallback_reason}")
        with observed() as registry:
            with inject(_crash_plan(3)):
                execution = executor.run(_square, arguments)
        assert execution.mode == "parallel"
        assert execution.pool_reused is True
        assert execution.results == [value * value for value in range(8)]
        counters = registry.snapshot()["counters"]
        assert counters["campaign.worker_respawns"] >= 1
        # The respawn replaced the broken pool under the same key, so
        # the *next* campaign rides the rebuilt pool, still warm.
        after = executor.run(_square, arguments)
        assert after.pool_reused is True
        assert after.results == execution.results

    def test_stale_inherited_plan_does_not_fire_on_later_campaigns(self):
        # Spawn the pool *inside* an armed fault context: fork-started
        # workers inherit the armed injector.  A later unarmed campaign
        # on the same warm pool must disarm that stale plan (the chunk
        # payload is the source of truth), so no trial crashes.
        executor = CampaignExecutor(workers=2)
        arguments = [(value,) for value in range(8)]
        with inject(_crash_plan(999)):  # armed, but never fires
            primed = executor.run(_square, arguments)
        if primed.mode != "parallel":
            pytest.skip(f"pool unavailable: {primed.fallback_reason}")
        with observed() as registry:
            execution = executor.run(_square, arguments)
        assert execution.mode == "parallel"
        assert execution.results == [value * value for value in range(8)]
        counters = registry.snapshot()["counters"]
        assert counters.get("campaign.worker_respawns", 0) == 0


class TestKillSwitch:
    def test_repro_workers_zero_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert resolve_workers() == 1
        execution = CampaignExecutor().run(
            _square, [(value,) for value in range(4)])
        assert execution.mode == "serial"
        assert execution.workers == 1
        assert execution.results == [0, 1, 4, 9]
        assert pool_stats()["live"] == 0

    def test_explicit_workers_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert CampaignExecutor(workers=2).workers == 2


class TestWarmPoolTelemetry:
    def test_snapshots_merge_from_pool_that_predates_registry(self):
        # The pool spawns while observation is *off*: its workers were
        # forked with no registry and a disabled flag.  The flag ships
        # per chunk, so a later observed campaign still gets every
        # count home through the snapshot payload.
        executor = CampaignExecutor(workers=2)
        primer = executor.run(_square, [(value,) for value in range(4)])
        if primer.mode != "parallel":
            pytest.skip(f"pool unavailable: {primer.fallback_reason}")
        values = list(range(1, 9))
        with observed() as registry:
            execution = executor.run(_instrumented_trial,
                                     [(value,) for value in values])
        assert execution.mode == "parallel"
        assert execution.pool_reused is True
        assert execution.results == values
        snapshot = registry.snapshot()
        assert snapshot["counters"]["trial.units"] == sum(values)
        histogram = snapshot["histograms"]["trial.value"]
        assert histogram["count"] == len(values)
        assert histogram["sum"] == pytest.approx(sum(values))

    def test_pool_spawn_and_reuse_counters(self):
        values = [(value,) for value in range(4)]
        with observed() as registry:
            executor = CampaignExecutor(workers=2)
            first = executor.run(_square, values)
            executor.run(_square, values)
        if first.mode != "parallel":
            pytest.skip(f"pool unavailable: {first.fallback_reason}")
        counters = registry.snapshot()["counters"]
        assert counters["campaign.pool_spawns"] == 1
        assert counters["campaign.pool_reuses"] == 1
