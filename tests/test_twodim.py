"""2-D continuum extension tests (paper section 7)."""

import numpy as np
import pytest

from repro.channel.propagation import BackscatterLink
from repro.core.pipeline import WiForceReader
from repro.core.twodim import ArraySensorPlacement, TwoDimensionalArray
from repro.errors import ConfigurationError
from repro.experiments.scenarios import calibrated_model, fast_transducer
from repro.reader.sounder import FrameLevelSounder
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.clock import wiforce_clocking
from repro.sensor.tag import WiForceTag


def make_reader(base_clock, seed):
    rng = np.random.default_rng(seed)
    transducer = fast_transducer()
    tag = WiForceTag(transducer, clocking=wiforce_clocking(base_clock))
    config = OFDMSounderConfig(carrier_frequency=900e6)
    sounder = FrameLevelSounder(config, tag, BackscatterLink(), rng=rng)
    model = calibrated_model(900e6, fast=True)
    return WiForceReader(sounder, model, groups_per_capture=2)


@pytest.fixture(scope="module")
def array():
    strips = [
        ArraySensorPlacement(make_reader(1e3, 1), offset_y=0.0),
        ArraySensorPlacement(make_reader(0.8e3, 2), offset_y=8e-3),
    ]
    grid = TwoDimensionalArray(strips, coupling_width=8e-3)
    grid.capture_baselines()
    return grid


class TestConstruction:
    def test_requires_two_strips(self):
        with pytest.raises(ConfigurationError):
            TwoDimensionalArray(
                [ArraySensorPlacement(make_reader(1e3, 9), 0.0)])

    def test_rejects_duplicate_clocks(self):
        strips = [
            ArraySensorPlacement(make_reader(1e3, 3), 0.0),
            ArraySensorPlacement(make_reader(1e3, 4), 8e-3),
        ]
        with pytest.raises(ConfigurationError):
            TwoDimensionalArray(strips)

    def test_rejects_unsorted_offsets(self):
        strips = [
            ArraySensorPlacement(make_reader(1e3, 5), 8e-3),
            ArraySensorPlacement(make_reader(0.8e3, 6), 0.0),
        ]
        with pytest.raises(ConfigurationError):
            TwoDimensionalArray(strips)


class TestForceSharing:
    def test_on_strip_full_share(self, array):
        assert array.force_share(0.0, 0.0) == pytest.approx(1.0)

    def test_share_decays_with_distance(self, array):
        assert array.force_share(4e-3, 0.0) == pytest.approx(0.5)
        assert array.force_share(8e-3, 0.0) == pytest.approx(0.0)


class TestPlanarEstimation:
    def test_press_on_strip(self, array):
        estimate = array.press(4.0, x=0.040, y=0.0)
        assert estimate.force == pytest.approx(4.0, abs=0.8)
        assert estimate.x == pytest.approx(0.040, abs=2e-3)
        assert estimate.y == pytest.approx(0.0, abs=2e-3)

    def test_press_between_strips(self, array):
        """The no-man's-land interpolation case from the paper."""
        estimate = array.press(6.0, x=0.045, y=4e-3)
        assert estimate.y == pytest.approx(4e-3, abs=2e-3)
        assert estimate.x == pytest.approx(0.045, abs=2.5e-3)
        assert estimate.force == pytest.approx(6.0, abs=1.5)

    def test_rejects_press_outside_coupling(self, array):
        with pytest.raises(Exception):
            array.press(3.0, x=0.040, y=0.1)

    def test_rejects_negative_force(self, array):
        with pytest.raises(Exception):
            array.press(-1.0, x=0.040, y=0.0)
