"""ASCII figures, adaptive group sizing and latency-baseline tests."""

import numpy as np
import pytest

from repro.baselines.vision_haptics import (
    SLIP_DEADLINE,
    VisionHapticsPipeline,
    WiForceLatency,
    latency_comparison,
)
from repro.core.adaptive import (
    optimal_group_length,
    predicted_phase_std_deg,
)
from repro.errors import ConfigurationError
from repro.experiments.figures import ascii_cdf, ascii_histogram, ascii_plot

T = 57.6e-6


class TestAsciiPlot:
    def test_renders_series(self):
        x = np.linspace(0.0, 8.0, 20)
        plot = ascii_plot([("phase", x, x ** 2)], x_label="force [N]",
                          y_label="deg")
        assert "p" in plot
        assert "force [N]" in plot
        assert "64" in plot  # y_max label (8^2) appears on the axis

    def test_two_series_distinct_markers(self):
        x = np.linspace(0.0, 1.0, 10)
        plot = ascii_plot([("a-series", x, x), ("b-series", x, 1 - x)])
        assert "a" in plot and "b" in plot

    def test_extremes_labelled(self):
        x = np.linspace(0.0, 1.0, 10)
        plot = ascii_plot([("s", x, 3.0 + x)])
        assert "3" in plot  # y_min label
        assert "4" in plot  # y_max label

    def test_constant_series_does_not_crash(self):
        x = np.linspace(0.0, 1.0, 10)
        plot = ascii_plot([("s", x, np.ones_like(x))])
        assert "s" in plot

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([])

    def test_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([("s", np.arange(3), np.arange(4))])

    def test_rejects_tiny_canvas(self):
        x = np.linspace(0.0, 1.0, 10)
        with pytest.raises(ConfigurationError):
            ascii_plot([("s", x, x)], width=4, height=2)


class TestAsciiCdfHistogram:
    def test_cdf_monotone_output(self, rng):
        errors = rng.normal(0.0, 1.0, 200)
        plot = ascii_cdf([("errors", errors)])
        assert "CDF" in plot

    def test_cdf_rejects_single_sample(self):
        with pytest.raises(ConfigurationError):
            ascii_cdf([("one", [0.5])])

    def test_histogram_bars(self):
        plot = ascii_histogram([1.0, 1.1, 2.5], np.array([0.0, 2.0, 4.0]),
                               label="loc")
        assert "#" in plot
        assert "loc" in plot

    def test_histogram_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram([], np.array([0.0, 1.0]))


class TestAdaptiveGroupLength:
    def test_error_model_components(self):
        pure_noise = predicted_phase_std_deg(100, T, 1.0, 0.0)
        assert pure_noise == pytest.approx(0.1)
        pure_wander = predicted_phase_std_deg(100, T, 0.0, 1.0)
        assert pure_wander == pytest.approx(np.sqrt(100 * T))

    def test_choice_is_integer_period_multiple(self):
        choice = optimal_group_length(T, 1e3, 2.0, 0.5)
        assert choice.group_length % 625 == 0

    def test_noisy_link_wants_longer_groups(self):
        quiet = optimal_group_length(T, 1e3, 0.5, 1.0)
        noisy = optimal_group_length(T, 1e3, 20.0, 1.0)
        assert noisy.group_length >= quiet.group_length

    def test_jittery_clock_wants_short_groups(self):
        stable = optimal_group_length(T, 1e3, 5.0, 0.05)
        jittery = optimal_group_length(T, 1e3, 5.0, 5.0)
        assert jittery.group_length <= stable.group_length

    def test_duration_cap_respected(self):
        choice = optimal_group_length(T, 1e3, 50.0, 0.0,
                                      max_duration=0.08)
        assert choice.group_duration <= 0.08 + 1e-9

    def test_default_deployment_matches_paper_choice(self):
        """At the prototype's SNR and oscillator quality the optimum is
        a small multiple of the base 36 ms group — the paper's regime."""
        choice = optimal_group_length(T, 1e3, 1.0, 0.5)
        assert choice.group_duration <= 0.15

    def test_predicted_error_at_choice(self):
        choice = optimal_group_length(T, 1e3, 1.0, 0.5)
        direct = predicted_phase_std_deg(choice.group_length, T, 1.0, 0.5)
        assert choice.predicted_phase_std_deg == pytest.approx(direct)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            predicted_phase_std_deg(0, T, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            optimal_group_length(T, 1e3, 1.0, 1.0, max_duration=0.0)


class TestVisionLatencyBaseline:
    def test_vision_misses_slip_deadline(self):
        """The section 6 claim: a 30 fps vision pipeline cannot close
        the incipient-slip loop."""
        assert not VisionHapticsPipeline().meets_slip_deadline()

    def test_wiforce_meets_slip_deadline(self):
        assert WiForceLatency().meets_slip_deadline()

    def test_latency_ordering(self):
        result = latency_comparison()
        assert result["wiforce_latency_s"] < result["vision_latency_s"]
        assert result["advantage"] > 1.5

    def test_fast_camera_narrows_the_gap(self):
        slow = VisionHapticsPipeline(frame_rate=30.0)
        fast = VisionHapticsPipeline(frame_rate=240.0, inference_time=5e-3)
        assert fast.feedback_latency < slow.feedback_latency

    def test_deadline_parameter(self):
        assert VisionHapticsPipeline().meets_slip_deadline(deadline=1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            VisionHapticsPipeline(frame_rate=0.0)
        with pytest.raises(ConfigurationError):
            WiForceLatency(group_duration=0.0)

    def test_slip_deadline_constant_sane(self):
        assert 0.01 <= SLIP_DEADLINE <= 0.2
