"""SMA connector parasitics and moving-clutter model tests."""

import numpy as np
import pytest

from repro.channel.mobility import (
    clutter_rejection_db,
    doppler_shift,
    equivalent_speed,
    walking_person_clutter,
)
from repro.errors import ChannelError, ConfigurationError
from repro.rf.connector import (
    SMA_EDGE_LAUNCH,
    SMA_HAND_SOLDERED,
    SMAConnector,
    connectorized,
)
from repro.rf.elements import line_twoport
from repro.units import SPEED_OF_LIGHT


class TestSMAConnector:
    def test_ideal_connector_is_identity(self, line):
        connector = SMAConnector(series_inductance=0.0,
                                 shunt_capacitance=0.0)
        frequency = np.linspace(0.1e9, 3e9, 31)
        bare = line_twoport(line, frequency)
        wrapped = connectorized(bare, connector)
        np.testing.assert_allclose(wrapped.s, bare.s, atol=1e-12)

    def test_parasitics_degrade_s11(self, line):
        frequency = np.linspace(0.1e9, 3e9, 61)
        bare = line_twoport(line, frequency)
        wrapped = connectorized(bare, SMA_EDGE_LAUNCH)
        assert (np.abs(wrapped.s11).max()
                > np.abs(bare.s11).max())

    def test_still_meets_paper_spec(self, line):
        """Even connectorized, the sensor keeps S11 < -10 dB to 3 GHz
        (the Fig. 10 requirement)."""
        frequency = np.linspace(0.1e9, 3e9, 61)
        wrapped = connectorized(line_twoport(line, frequency),
                                SMA_EDGE_LAUNCH)
        worst = 20 * np.log10(np.abs(wrapped.s11).max())
        assert worst < -10.0

    def test_sloppy_connector_worse(self, line):
        frequency = np.linspace(0.1e9, 3e9, 61)
        bare = line_twoport(line, frequency)
        good = connectorized(bare, SMA_EDGE_LAUNCH)
        bad = connectorized(bare, SMA_HAND_SOLDERED)
        assert np.abs(bad.s11).max() > np.abs(good.s11).max()

    def test_degradation_grows_with_frequency(self, line):
        frequency = np.array([0.5e9, 2.9e9])
        wrapped = connectorized(line_twoport(line, frequency),
                                SMA_EDGE_LAUNCH)
        assert abs(wrapped.s11[1]) > abs(wrapped.s11[0])

    def test_rejects_negative_parasitics(self):
        with pytest.raises(ConfigurationError):
            SMAConnector(series_inductance=-1e-9)


class TestDopplerEquivalence:
    def test_doppler_formula(self):
        assert doppler_shift(1.0, 900e6) == pytest.approx(
            2 * 900e6 / SPEED_OF_LIGHT)

    def test_equivalent_speed_enormous(self):
        """Section 3.3: the 1 kHz tone equals a reflector at ~170 m/s
        — two orders of magnitude beyond indoor motion."""
        speed = equivalent_speed(1e3, 900e6)
        assert speed > 100.0

    def test_inverse_relation(self):
        speed = equivalent_speed(1e3, 900e6)
        assert doppler_shift(speed, 900e6) == pytest.approx(1e3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ChannelError):
            equivalent_speed(0.0, 900e6)
        with pytest.raises(ChannelError):
            doppler_shift(1.0, 0.0)


class TestWalkingClutter:
    def test_not_static(self, rng):
        clutter = walking_person_clutter(900e6, rng=rng)
        assert not clutter.is_static

    def test_dopplers_are_low_frequency(self, rng):
        """Human motion stays far below the kHz readout tones."""
        clutter = walking_person_clutter(900e6, speed=2.0, rng=rng)
        assert all(abs(path.doppler) < 100.0 for path in clutter.paths)

    def test_total_amplitude(self, rng):
        clutter = walking_person_clutter(900e6,
                                         reflection_amplitude=1e-3,
                                         rng=rng)
        total = sum(abs(path.gain) for path in clutter.paths)
        assert total == pytest.approx(1e-3, rel=1e-6)

    def test_rejects_negative_speed(self, rng):
        with pytest.raises(ChannelError):
            walking_person_clutter(900e6, speed=-1.0, rng=rng)


class TestClutterRejection:
    def test_strong_rejection_at_tone(self):
        """A 10 Hz walker is >40 dB down in the 1 kHz bin for the
        paper's 625-snapshot groups."""
        rejection = clutter_rejection_db(1e3, 10.0, 625, 57.6e-6)
        assert rejection > 40.0

    def test_zero_offset_no_rejection(self):
        assert clutter_rejection_db(1e3, 1e3, 625, 57.6e-6) == pytest.approx(
            0.0, abs=0.1)

    def test_rejection_improves_with_group_length(self):
        short = clutter_rejection_db(1e3, 100.0, 125, 57.6e-6)
        long = clutter_rejection_db(1e3, 100.0, 1250, 57.6e-6)
        assert long > short

    def test_rejects_bad_group(self):
        with pytest.raises(ChannelError):
            clutter_rejection_db(1e3, 10.0, 1, 57.6e-6)
