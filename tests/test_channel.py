"""Channel substrate tests: propagation, multipath, tissue, noise."""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel, Path, indoor_channel
from repro.channel.noise import awgn, channel_estimate_noise_std
from repro.channel.propagation import (
    BackscatterLink,
    backscatter_link_gain,
    free_space_path_gain,
)
from repro.channel.tissue import TissueLayer, TissuePhantom, body_phantom
from repro.errors import ChannelError
from repro.units import SPEED_OF_LIGHT


class TestFreeSpace:
    def test_amplitude_inverse_distance(self):
        near = free_space_path_gain(900e6, 1.0)
        far = free_space_path_gain(900e6, 2.0)
        assert abs(near) == pytest.approx(2 * abs(far))

    def test_phase_matches_distance(self):
        distance = 1.234
        gain = free_space_path_gain(900e6, distance)
        expected = -2 * np.pi * 900e6 * distance / SPEED_OF_LIGHT
        assert np.angle(gain) == pytest.approx(
            np.angle(np.exp(1j * expected)))

    def test_antenna_gains_scale_amplitude(self):
        bare = free_space_path_gain(900e6, 1.0)
        with_gain = free_space_path_gain(900e6, 1.0, 6.0, 6.0)
        assert abs(with_gain) / abs(bare) == pytest.approx(10 ** 0.6,
                                                           rel=1e-6)

    def test_friis_free_space_loss_value(self):
        """31.5 dB at 900 MHz over 1 m (textbook value)."""
        gain = free_space_path_gain(900e6, 1.0)
        loss_db = -20 * np.log10(abs(gain))
        assert loss_db == pytest.approx(31.5, abs=0.2)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ChannelError):
            free_space_path_gain(900e6, 0.0)

    def test_two_way_is_product(self):
        two_way = backscatter_link_gain(900e6, 1.0, 2.0, 0.0, 0.0, 0.0)
        forward = free_space_path_gain(900e6, 1.0)
        backward = free_space_path_gain(900e6, 2.0)
        assert two_way == pytest.approx(forward * backward)


class TestBackscatterLink:
    def test_two_way_loss_reasonable(self):
        link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0)
        loss = link.two_way_loss_db(900e6)
        assert 20.0 < loss < 60.0

    def test_direct_stronger_than_backscatter(self):
        link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0)
        assert link.direct_loss_db(900e6) < link.two_way_loss_db(900e6)

    def test_direct_blockage_attenuates(self):
        open_link = BackscatterLink()
        blocked = BackscatterLink(direct_blockage_db=45.0)
        delta = blocked.direct_loss_db(900e6) - open_link.direct_loss_db(900e6)
        assert delta == pytest.approx(45.0, abs=0.1)

    def test_tag_blockage_applies_twice(self):
        open_link = BackscatterLink()
        blocked = BackscatterLink(tag_blockage_db=10.0)
        delta = blocked.two_way_loss_db(900e6) - open_link.two_way_loss_db(900e6)
        assert delta == pytest.approx(20.0, abs=0.1)

    def test_rejects_bad_distances(self):
        with pytest.raises(ChannelError):
            BackscatterLink(tx_to_tag=0.0)

    def test_rejects_negative_blockage(self):
        with pytest.raises(ChannelError):
            BackscatterLink(direct_blockage_db=-1.0)


class TestMultipath:
    def test_single_path_response(self):
        channel = MultipathChannel([Path(1.0 + 0j, 10e-9)])
        response = channel.frequency_response(np.array([1e9]))
        assert response[0] == pytest.approx(np.exp(-2j * np.pi * 1e9 * 10e-9))

    def test_static_channel_time_invariant(self):
        channel = MultipathChannel([Path(0.5, 10e-9), Path(0.2j, 30e-9)])
        f = np.array([1e9, 1.1e9])
        np.testing.assert_allclose(channel.frequency_response(f, 0.0),
                                   channel.frequency_response(f, 1.0))

    def test_doppler_path_rotates(self):
        channel = MultipathChannel([Path(1.0, 10e-9, doppler=100.0)])
        f = np.array([1e9])
        early = channel.frequency_response(f, 0.0)
        late = channel.frequency_response(f, 2.5e-3)
        assert np.angle(late[0] * np.conj(early[0])) == pytest.approx(
            2 * np.pi * 100.0 * 2.5e-3)

    def test_response_series_matches_pointwise(self):
        channel = MultipathChannel([Path(0.5, 10e-9, doppler=50.0),
                                    Path(0.3, 20e-9)])
        f = np.array([1e9, 2e9])
        times = np.array([0.0, 1e-3, 2e-3])
        series = channel.response_series(f, times)
        for i, t in enumerate(times):
            np.testing.assert_allclose(series[i],
                                       channel.frequency_response(f, t))

    def test_is_static_flag(self):
        assert MultipathChannel([Path(1.0, 1e-9)]).is_static
        assert not MultipathChannel([Path(1.0, 1e-9, 10.0)]).is_static

    def test_indoor_channel_power_budget(self, rng):
        channel = indoor_channel(900e6, clutter_to_direct_db=10.0, rng=rng)
        paths = channel.paths
        direct_power = abs(paths[0].gain) ** 2
        clutter_power = sum(abs(p.gain) ** 2 for p in paths[1:])
        assert clutter_power / direct_power == pytest.approx(0.1, rel=1e-6)

    def test_indoor_channel_no_clutter(self, rng):
        channel = indoor_channel(900e6, path_count=0, rng=rng)
        assert len(channel.paths) == 1

    def test_path_rejects_negative_delay(self):
        with pytest.raises(ChannelError):
            Path(1.0, -1e-9)


class TestTissuePhantom:
    def test_body_phantom_layers(self):
        phantom = body_phantom()
        assert [layer.name for layer in phantom.layers] == [
            "muscle", "fat", "skin"]
        assert phantom.total_thickness == pytest.approx(37e-3)

    def test_loss_positive(self):
        assert body_phantom().one_way_loss_db(900e6) > 3.0

    def test_higher_frequency_lossier(self):
        """The paper's reason to use 900 MHz for in-body sensing."""
        phantom = body_phantom()
        assert (phantom.one_way_loss_db(2.4e9)
                > phantom.one_way_loss_db(900e6) + 3.0)

    def test_two_way_doubles(self):
        phantom = body_phantom()
        assert phantom.two_way_loss_db(900e6) == pytest.approx(
            2 * phantom.one_way_loss_db(900e6))

    def test_lossless_layer_conserves_energy(self):
        # A lossless dielectric slab transmits + reflects all power.
        layer = TissueLayer("custom", 10e-3, permittivity_override=4.0,
                            conductivity_override=0.0)
        phantom = TissuePhantom([layer])
        t = phantom.transmission_coefficient(1e9)
        assert abs(t) <= 1.0 + 1e-9

    def test_half_wave_window_is_transparent(self):
        """A lossless slab exactly half a wavelength thick transmits
        fully (the classic radome result) — a strong check of the
        transfer-matrix algebra."""
        permittivity = 4.0
        frequency = 1e9
        wavelength = SPEED_OF_LIGHT / (frequency * np.sqrt(permittivity))
        layer = TissueLayer("custom", wavelength / 2.0,
                            permittivity_override=permittivity,
                            conductivity_override=0.0)
        phantom = TissuePhantom([layer])
        t = phantom.transmission_coefficient(frequency)
        assert abs(t) == pytest.approx(1.0, abs=1e-9)

    def test_thicker_muscle_lossier(self):
        thin = TissuePhantom([TissueLayer("muscle", 10e-3)])
        thick = TissuePhantom([TissueLayer("muscle", 30e-3)])
        assert thick.one_way_loss_db(900e6) > thin.one_way_loss_db(900e6)

    def test_transmission_vectorized(self):
        phantom = body_phantom()
        t = phantom.transmission_coefficient(np.array([900e6, 2.4e9]))
        assert t.shape == (2,)

    def test_rejects_unknown_tissue(self):
        with pytest.raises(ChannelError):
            TissueLayer("mystery-meat", 1e-3)

    def test_rejects_empty_stack(self):
        with pytest.raises(ChannelError):
            TissuePhantom([])

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ChannelError):
            TissueLayer("muscle", 0.0)


class TestNoise:
    def test_awgn_power(self, rng):
        noise = awgn(100_000, 2.0, rng)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(2.0, rel=0.05)

    def test_awgn_zero_power(self, rng):
        noise = awgn(100, 0.0, rng)
        assert np.all(noise == 0.0)

    def test_awgn_rejects_negative(self, rng):
        with pytest.raises(ChannelError):
            awgn(10, -1.0, rng)

    def test_estimate_noise_scales_with_averaging(self):
        short = channel_estimate_noise_std(12.5e6, 64, 64, 0.1)
        long = channel_estimate_noise_std(12.5e6, 320, 64, 0.1)
        assert long == pytest.approx(short / np.sqrt(5.0))

    def test_estimate_noise_scales_with_amplitude(self):
        weak = channel_estimate_noise_std(12.5e6, 320, 64, 0.01)
        strong = channel_estimate_noise_std(12.5e6, 320, 64, 0.1)
        assert weak == pytest.approx(10 * strong)

    def test_rejects_short_preamble(self):
        with pytest.raises(ChannelError):
            channel_estimate_noise_std(12.5e6, 32, 64, 0.1)
