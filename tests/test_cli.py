"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_calibrate_defaults(self):
        args = build_parser().parse_args(["calibrate"])
        assert args.carrier == 900e6
        assert args.output == "wiforce_model.json"

    def test_read_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["read", "--force", "1",
                                       "--location", "0.04"])


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "80 mm" in output
        assert "HMC544AE" in output

    def test_power_runs(self, capsys):
        assert main(["power"]) == 0
        output = capsys.readouterr().out
        assert "uW" in output

    def test_report_parses(self):
        args = build_parser().parse_args(["report", "--output", "r.md"])
        assert args.command == "report"
        assert args.fast is True

    def test_report_full_flag(self):
        args = build_parser().parse_args(["report", "--full"])
        assert args.fast is False

    def test_calibrate_then_read(self, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert main(["calibrate", "--fast", "--output",
                     str(model_path)]) == 0
        assert model_path.exists()
        assert main(["read", "--model", str(model_path), "--force", "3.0",
                     "--location", "0.04", "--fast",
                     "--repeats", "1"]) == 0
        output = capsys.readouterr().out
        assert "estimated:" in output


@pytest.mark.integration
class TestDemoCommand:
    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo", "--fast", "--seed", "4"]) == 0
        output = capsys.readouterr().out
        assert "press 2.0 N" in output
        assert "read" in output
