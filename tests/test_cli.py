"""CLI tests (python -m repro ...)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_log_level_parses(self):
        args = build_parser().parse_args(["--log-level", "debug", "info"])
        assert args.log_level == "debug"

    def test_log_level_default_info(self):
        assert build_parser().parse_args(["info"]).log_level == "info"

    def test_log_level_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "loud", "info"])

    def test_obs_report_parses(self):
        args = build_parser().parse_args(
            ["obs-report", "--input", "x.json", "--prometheus"])
        assert args.command == "obs-report"
        assert args.input == "x.json"
        assert args.prometheus is True

    def test_calibrate_defaults(self):
        args = build_parser().parse_args(["calibrate"])
        assert args.carrier == 900e6
        assert args.output == "wiforce_model.json"

    def test_read_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["read", "--force", "1",
                                       "--location", "0.04"])


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "80 mm" in output
        assert "HMC544AE" in output

    def test_power_runs(self, capsys):
        assert main(["power"]) == 0
        output = capsys.readouterr().out
        assert "uW" in output

    def test_report_parses(self):
        args = build_parser().parse_args(["report", "--output", "r.md"])
        assert args.command == "report"
        assert args.fast is True

    def test_report_full_flag(self):
        args = build_parser().parse_args(["report", "--full"])
        assert args.fast is False

    def test_calibrate_then_read(self, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert main(["calibrate", "--fast", "--output",
                     str(model_path)]) == 0
        assert model_path.exists()
        assert main(["read", "--model", str(model_path), "--force", "3.0",
                     "--location", "0.04", "--fast",
                     "--repeats", "1"]) == 0
        output = capsys.readouterr().out
        assert "estimated:" in output


class TestObsReport:
    @pytest.fixture()
    def stamped_report(self, tmp_path):
        """A minimal bench report stamped exactly like the emitters do."""
        from repro.obs import Registry, stamp_report

        registry = Registry()
        registry.counter("estimator.batch_inversions").increment(8)
        registry.gauge("campaign.worker_utilization").set(0.9)
        registry.histogram("serve.latency_seconds").observe(0.004)
        with registry.span("serve.flush"):
            pass
        report = stamp_report({"service": {"throughput_rps": 1000.0}},
                              config={"sensors": 8}, registry=registry)
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(report))
        return path

    def test_summarizes_stamped_report(self, stamped_report, capsys):
        assert main(["obs-report", "--input", str(stamped_report)]) == 0
        output = capsys.readouterr().out
        assert "schema_version : 2" in output
        assert "estimator.batch_inversions" in output
        assert "campaign.worker_utilization" in output
        assert "serve.latency_seconds" in output
        assert "span.serve.flush.seconds" in output
        # Per-stage stats columns come from the snapshot histograms.
        assert "p99" in output

    def test_prometheus_dump(self, stamped_report, capsys):
        assert main(["obs-report", "--input", str(stamped_report),
                     "--prometheus"]) == 0
        output = capsys.readouterr().out
        assert "# TYPE repro_estimator_batch_inversions counter" in output
        assert 'repro_serve_latency_seconds_bucket{le="+Inf"} 1' in output

    def test_missing_file_fails(self, tmp_path):
        assert main(["obs-report", "--input",
                     str(tmp_path / "absent.json")]) == 1

    def test_report_without_snapshot_fails(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"service": {}}))
        assert main(["obs-report", "--input", str(path)]) == 1

    def test_pre_manifest_report_falls_back_to_telemetry(self, tmp_path,
                                                         capsys):
        path = tmp_path / "old.json"
        path.write_text(json.dumps(
            {"telemetry": {"counters": {"requests.total": 4}}}))
        assert main(["obs-report", "--input", str(path)]) == 0
        output = capsys.readouterr().out
        assert "schema_version : 1" in output
        assert "requests.total" in output


@pytest.mark.integration
class TestDemoCommand:
    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo", "--fast", "--seed", "4"]) == 0
        output = capsys.readouterr().out
        assert "press 2.0 N" in output
        assert "read" in output
