"""Baseline-system tests (RFID touch, RSS strain)."""

import numpy as np
import pytest

from repro.baselines.rfid_touch import RFIDTouchArray
from repro.baselines.strain_rss import NotchReader, NotchStrainSensor
from repro.channel.multipath import indoor_channel
from repro.errors import ConfigurationError


class TestRFIDTouchArray:
    def test_tag_layout(self):
        array = RFIDTouchArray(length=80e-3, tag_pitch=25e-3)
        assert array.tag_count >= 4
        assert array.tag_centres[0] == 0.0
        assert array.tag_centres[-1] == pytest.approx(80e-3)

    def test_touch_detected(self, rng):
        array = RFIDTouchArray(rng=rng)
        reading = array.read(2.0, 0.040)
        assert reading.touched

    def test_no_touch_without_force(self, rng):
        array = RFIDTouchArray(rng=rng)
        misfires = sum(array.read(0.0, 0.040).touched for _ in range(50))
        assert misfires <= 2

    def test_location_quantised_to_pitch(self, rng):
        array = RFIDTouchArray(tag_pitch=25e-3, rng=rng)
        reading = array.read(2.0, 0.040)
        assert reading.location in array.tag_centres

    def test_errors_are_centimetre_class(self, rng):
        """The paper's comparison point: cm-level localization."""
        array = RFIDTouchArray(tag_pitch=25e-3, rng=rng)
        locations = list(np.linspace(0.005, 0.075, 15)) * 4
        errors = array.location_errors(locations)
        assert np.median(errors) > 2e-3

    def test_force_insensitive(self, rng):
        """Binary-touch nature: soft and hard presses read the same."""
        array = RFIDTouchArray(rng=rng)
        soft = [array.read(0.5, 0.040).tag_index for _ in range(20)]
        hard = [array.read(8.0, 0.040).tag_index for _ in range(20)]
        assert set(soft) == set(hard)

    def test_rejects_bad_pitch(self):
        with pytest.raises(ConfigurationError):
            RFIDTouchArray(length=10e-3, tag_pitch=25e-3)

    def test_rejects_location_outside(self, rng):
        with pytest.raises(ConfigurationError):
            RFIDTouchArray(rng=rng).read(1.0, 0.5)


class TestNotchStrainSensing:
    def test_notch_moves_with_strain(self):
        sensor = NotchStrainSensor()
        assert sensor.notch_frequency(0.05) < sensor.notch_frequency(0.0)

    def test_inversion_roundtrip(self):
        sensor = NotchStrainSensor()
        for strain in (0.01, 0.05, 0.1):
            notch = sensor.notch_frequency(strain)
            assert sensor.strain_from_notch(notch) == pytest.approx(strain)

    def test_transmission_minimum_at_notch(self):
        sensor = NotchStrainSensor()
        frequency = np.linspace(800e6, 950e6, 2001)
        response = sensor.transmission(frequency, 0.05)
        dip = frequency[np.argmin(response)]
        assert dip == pytest.approx(sensor.notch_frequency(0.05), rel=1e-3)

    def test_clean_channel_reads_accurately(self, rng):
        sensor = NotchStrainSensor()
        reader = NotchReader(sensor, 0.8e9, 0.95e9, rng=rng)
        errors = reader.strain_errors(np.linspace(0.02, 0.08, 8))
        assert np.median(errors) < 0.01

    def test_multipath_breaks_rss_sensing(self, rng):
        """The paper's section 8 critique, measured: indoor fading
        creates spurious minima that masquerade as notches."""
        sensor = NotchStrainSensor()
        reader = NotchReader(sensor, 0.8e9, 0.95e9, rng=rng)
        strains = np.linspace(0.02, 0.08, 8)
        clean = np.median(reader.strain_errors(strains))
        channel = indoor_channel(900e6, path_count=8,
                                 clutter_to_direct_db=3.0, rng=rng)
        faded = np.median(reader.strain_errors(strains, channel))
        assert faded > 3.0 * max(clean, 1e-4)

    def test_rejects_negative_strain(self):
        with pytest.raises(ConfigurationError):
            NotchStrainSensor().notch_frequency(-0.1)

    def test_rejects_bad_sweep(self, rng):
        with pytest.raises(ConfigurationError):
            NotchReader(NotchStrainSensor(), 1e9, 0.5e9, rng=rng)
