"""Streaming tracker and frame-synchronization tests."""

import numpy as np
import pytest

from repro.channel.multipath import indoor_channel
from repro.channel.noise import awgn
from repro.channel.propagation import BackscatterLink
from repro.core.harmonics import HarmonicExtractor, integer_period_group_length
from repro.core.tracking import StreamingTracker
from repro.errors import ReaderError
from repro.experiments.scenarios import calibrated_model, fast_transducer
from repro.reader.sounder import FrameLevelSounder, concatenate_streams
from repro.reader.sync import (
    FrameSynchronizer,
    apply_cfo,
    correct_cfo,
)
from repro.reader.waveform import OFDMSounderConfig, generate_preamble
from repro.sensor.tag import TagState, WiForceTag


@pytest.fixture(scope="module")
def tracking_setup():
    rng = np.random.default_rng(31)
    config = OFDMSounderConfig(carrier_frequency=900e6)
    tag = WiForceTag(fast_transducer(), clock_offset_ppm=20.0)
    sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                indoor_channel(900e6, rng=rng), rng=rng)
    group = integer_period_group_length(config.frame_period, 1e3)
    extractor = HarmonicExtractor(
        tones=(tag.clocking.readout_port1, tag.clocking.readout_port2),
        group_length=group)
    model = calibrated_model(900e6, fast=True)
    return sounder, extractor, model, group


def record_interaction(sounder, group, segments):
    """Record a piecewise-static interaction as one stream."""
    streams = []
    clock = 0.0
    for state, groups in segments:
        stream = sounder.capture(state, groups * group, start_time=clock)
        clock += stream.frames * sounder.config.frame_period
        streams.append(stream)
    return concatenate_streams(*streams)


class TestStreamingTracker:
    def test_tracks_press_profile(self, tracking_setup):
        sounder, extractor, model, group = tracking_setup
        stream = record_interaction(sounder, group, [
            (TagState(), 4),
            (TagState(3.0, 0.040), 4),
            (TagState(6.0, 0.040), 4),
            (TagState(), 3),
        ])
        tracker = StreamingTracker(model, extractor, baseline_groups=4)
        samples = tracker.process(stream)
        assert len(samples) == 15
        # Baseline groups untouched.
        assert not any(s.touched for s in samples[:4])
        # The 3 N plateau.
        plateau1 = [s.force for s in samples[4:8] if s.touched]
        assert np.median(plateau1) == pytest.approx(3.0, abs=0.7)
        # The 6 N plateau reads higher.
        plateau2 = [s.force for s in samples[8:12] if s.touched]
        assert np.median(plateau2) > np.median(plateau1)
        # Release detected.
        assert not samples[-1].touched

    def test_location_tracked(self, tracking_setup):
        sounder, extractor, model, group = tracking_setup
        stream = record_interaction(sounder, group, [
            (TagState(), 4),
            (TagState(4.0, 0.055), 4),
        ])
        tracker = StreamingTracker(model, extractor, baseline_groups=4)
        samples = tracker.process(stream)
        touched = [s for s in samples if s.touched]
        assert touched
        locations = [s.location for s in touched]
        assert np.median(locations) == pytest.approx(0.055, abs=2e-3)

    def test_touch_events_segmentation(self, tracking_setup):
        sounder, extractor, model, group = tracking_setup
        stream = record_interaction(sounder, group, [
            (TagState(), 4),
            (TagState(4.0, 0.030), 3),
            (TagState(), 2),
            (TagState(2.0, 0.060), 3),
            (TagState(), 2),
        ])
        tracker = StreamingTracker(model, extractor, baseline_groups=4)
        events = tracker.touch_events(tracker.process(stream))
        assert len(events) == 2
        assert events[0].mean_location == pytest.approx(0.030, abs=3e-3)
        assert events[1].mean_location == pytest.approx(0.060, abs=3e-3)
        assert events[0].peak_force > events[1].peak_force

    def test_requires_enough_groups(self, tracking_setup):
        sounder, extractor, model, group = tracking_setup
        stream = sounder.capture(TagState(), 4 * group)
        tracker = StreamingTracker(model, extractor, baseline_groups=4)
        with pytest.raises(ReaderError):
            tracker.process(stream)

    def test_touch_events_empty_stream_is_empty(self):
        # Regression: segmentation must not assume at least one
        # contact segment exists.
        assert StreamingTracker.touch_events([]) == []

    def test_touch_events_all_below_threshold_is_empty(self):
        from repro.core.tracking import TrackedSample

        untouched = [
            TrackedSample(time=0.01 * g, phi1=0.001, phi2=-0.002,
                          touched=False, force=0.0, location=0.0)
            for g in range(10)
        ]
        assert StreamingTracker.touch_events(untouched) == []
        # Debounce on an untouched stream is equally empty.
        assert StreamingTracker.touch_events(untouched,
                                             min_groups=3) == []

    def test_touch_events_debounce_drops_short_blips(self):
        from repro.core.tracking import TrackedSample

        def sample(g, touched):
            return TrackedSample(time=0.01 * g, phi1=0.0, phi2=0.0,
                                 touched=touched,
                                 force=2.0 if touched else 0.0,
                                 location=0.03 if touched else 0.0)

        blip = [sample(0, False), sample(1, True), sample(2, False),
                sample(3, True), sample(4, True), sample(5, True)]
        events = StreamingTracker.touch_events(blip, min_groups=2)
        assert len(events) == 1
        assert events[0].onset == pytest.approx(0.03)

    def test_rejects_single_tone_extractor(self, tracking_setup):
        _, _, model, group = tracking_setup
        extractor = HarmonicExtractor(tones=(1e3,), group_length=group)
        with pytest.raises(ReaderError):
            StreamingTracker(model, extractor)


class TestConcatenateStreams:
    def test_rejects_non_contiguous(self, tracking_setup):
        sounder, _, _, group = tracking_setup
        a = sounder.capture(TagState(), 10, start_time=0.0)
        b = sounder.capture(TagState(), 10, start_time=1.0)
        with pytest.raises(ValueError):
            concatenate_streams(a, b)

    def test_concatenates_contiguous(self, tracking_setup):
        sounder, _, _, _ = tracking_setup
        a = sounder.capture(TagState(), 10, start_time=0.0)
        b = sounder.capture(TagState(), 10,
                            start_time=10 * sounder.config.frame_period)
        joined = concatenate_streams(a, b)
        assert joined.frames == 20
        assert np.all(np.diff(joined.times) > 0)


class TestFrameSynchronizer:
    @pytest.fixture()
    def config(self):
        return OFDMSounderConfig(carrier_frequency=900e6)

    def make_capture(self, config, offset=100, cfo=0.0, noise=0.0,
                     rng=None):
        preamble = generate_preamble(config)
        samples = np.zeros(offset + preamble.size + 200, dtype=complex)
        samples[offset:offset + preamble.size] = preamble
        if cfo != 0.0:
            samples = apply_cfo(samples, cfo, config.bandwidth)
        if noise > 0.0:
            rng = rng or np.random.default_rng(0)
            samples = samples + awgn(samples.shape,
                                     noise ** 2, rng)
        return samples

    def test_detects_offset(self, config):
        samples = self.make_capture(config, offset=137)
        result = FrameSynchronizer(config).detect(samples)
        assert abs(result.offset - 137) <= 2

    def test_metric_near_one_clean(self, config):
        samples = self.make_capture(config, offset=64)
        result = FrameSynchronizer(config).detect(samples)
        assert result.metric > 0.95

    def test_estimates_cfo(self, config):
        samples = self.make_capture(config, offset=100, cfo=5e3)
        result = FrameSynchronizer(config).detect(samples)
        assert result.cfo == pytest.approx(5e3, rel=0.02)

    def test_cfo_correction_roundtrip(self, config):
        preamble = generate_preamble(config)
        shifted = apply_cfo(preamble, 3e3, config.bandwidth)
        restored = correct_cfo(shifted, 3e3, config.bandwidth)
        np.testing.assert_allclose(restored, preamble, atol=1e-12)

    def test_detects_under_noise(self, config, rng):
        amplitude = float(np.abs(generate_preamble(config)).mean())
        samples = self.make_capture(config, offset=150,
                                    noise=0.1 * amplitude, rng=rng)
        result = FrameSynchronizer(config).detect(samples)
        assert abs(result.offset - 150) <= 3

    def test_raises_without_preamble(self, config, rng):
        noise_only = awgn(2000, 1e-6, rng)
        with pytest.raises(ReaderError):
            FrameSynchronizer(config).detect(noise_only)

    def test_max_cfo(self, config):
        sync = FrameSynchronizer(config)
        assert sync.max_cfo == pytest.approx(12.5e6 / 128)

    def test_rejects_short_capture(self, config):
        with pytest.raises(ReaderError):
            FrameSynchronizer(config).correlation_metric(np.zeros(10))
