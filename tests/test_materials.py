"""Material database tests."""

import pytest

from repro.errors import ConfigurationError
from repro.mechanics.materials import (
    COPPER,
    ECOFLEX_0030,
    ECOFLEX_0050,
    FR4,
    GELATIN_PHANTOM,
    Material,
    material_library,
)


class TestMaterialValidation:
    def test_rejects_zero_modulus(self):
        with pytest.raises(ConfigurationError):
            Material("bad", 0.0, 0.3, 1000.0)

    def test_rejects_negative_modulus(self):
        with pytest.raises(ConfigurationError):
            Material("bad", -1e9, 0.3, 1000.0)

    def test_rejects_poisson_half(self):
        with pytest.raises(ConfigurationError):
            Material("bad", 1e9, 0.5, 1000.0)

    def test_rejects_negative_poisson(self):
        with pytest.raises(ConfigurationError):
            Material("bad", 1e9, -0.1, 1000.0)

    def test_rejects_zero_density(self):
        with pytest.raises(ConfigurationError):
            Material("bad", 1e9, 0.3, 0.0)

    def test_valid_material_constructs(self):
        material = Material("ok", 1e9, 0.3, 1000.0)
        assert material.youngs_modulus == 1e9


class TestDerivedProperties:
    def test_shear_modulus_formula(self):
        material = Material("ok", 2.6e9, 0.3, 1000.0)
        assert material.shear_modulus == pytest.approx(1e9)

    def test_plane_strain_stiffer_than_e(self):
        assert ECOFLEX_0030.plane_strain_modulus > ECOFLEX_0030.youngs_modulus

    def test_plane_strain_formula(self):
        expected = COPPER.youngs_modulus / (1 - 0.34 ** 2)
        assert COPPER.plane_strain_modulus == pytest.approx(expected)


class TestLibraryValues:
    def test_copper_much_stiffer_than_ecoflex(self):
        assert COPPER.youngs_modulus / ECOFLEX_0030.youngs_modulus > 1e5

    def test_ecoflex_50_stiffer_than_30(self):
        assert ECOFLEX_0050.youngs_modulus > ECOFLEX_0030.youngs_modulus

    def test_ecoflex_nearly_incompressible(self):
        assert ECOFLEX_0030.poisson_ratio > 0.45

    def test_gelatin_soft(self):
        assert GELATIN_PHANTOM.youngs_modulus < 100e3

    def test_library_contains_all(self):
        library = material_library()
        for material in (ECOFLEX_0030, ECOFLEX_0050, COPPER, FR4,
                         GELATIN_PHANTOM):
            assert library[material.name] is material

    def test_library_copy_is_isolated(self):
        library = material_library()
        library.clear()
        assert material_library()

    def test_materials_are_frozen(self):
        with pytest.raises(Exception):
            COPPER.youngs_modulus = 1.0
