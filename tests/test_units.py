"""Unit-conversion and constants tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestLengthAndFrequency:
    def test_mm_roundtrip(self):
        assert units.to_mm(units.mm(80.0)) == pytest.approx(80.0)

    def test_mm_is_metres(self):
        assert units.mm(1.0) == pytest.approx(1e-3)

    def test_um(self):
        assert units.um(35.0) == pytest.approx(35e-6)

    def test_ghz(self):
        assert units.ghz(2.4) == pytest.approx(2.4e9)

    def test_mhz(self):
        assert units.mhz(12.5) == pytest.approx(12.5e6)

    def test_khz(self):
        assert units.khz(195.0) == pytest.approx(195e3)

    def test_us(self):
        assert units.us(57.6) == pytest.approx(57.6e-6)


class TestDecibels:
    def test_db_of_ten(self):
        assert units.db(10.0) == pytest.approx(10.0)

    def test_db_of_zero_is_neg_inf(self):
        assert units.db(0.0) == -math.inf

    def test_from_db_roundtrip(self):
        assert units.from_db(units.db(123.0)) == pytest.approx(123.0)

    def test_amplitude_db_is_20log(self):
        assert units.db_amplitude(10.0) == pytest.approx(20.0)

    def test_from_db_amplitude_roundtrip(self):
        assert units.from_db_amplitude(
            units.db_amplitude(0.3)) == pytest.approx(0.3)

    def test_dbm_zero_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_dbm_roundtrip(self):
        assert units.watts_to_dbm(units.dbm_to_watts(10.0)) == pytest.approx(10.0)

    def test_watts_to_dbm_of_zero(self):
        assert units.watts_to_dbm(0.0) == -math.inf


class TestWavelength:
    def test_900mhz_wavelength(self):
        assert units.wavelength(900e6) == pytest.approx(0.333, rel=1e-2)

    def test_dielectric_shortens_wavelength(self):
        assert units.wavelength(1e9, 4.0) == pytest.approx(
            units.wavelength(1e9) / 2.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            units.wavelength(0.0)

    def test_rejects_nonpositive_permittivity(self):
        with pytest.raises(ValueError):
            units.wavelength(1e9, 0.0)


class TestWrapPhase:
    def test_identity_in_range(self):
        assert units.wrap_phase(0.5) == pytest.approx(0.5)

    def test_wraps_positive(self):
        assert units.wrap_phase(3 * math.pi) == pytest.approx(math.pi)

    def test_wraps_negative(self):
        assert units.wrap_phase(-3 * math.pi) == pytest.approx(math.pi)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_always_in_interval(self, angle):
        wrapped = units.wrap_phase(angle)
        assert -math.pi < wrapped <= math.pi

    @given(st.floats(min_value=-30.0, max_value=30.0))
    def test_wrap_preserves_angle_mod_2pi(self, angle):
        wrapped = units.wrap_phase(angle)
        assert math.isclose(math.cos(wrapped), math.cos(angle), abs_tol=1e-9)
        assert math.isclose(math.sin(wrapped), math.sin(angle), abs_tol=1e-9)


class TestThermalNoise:
    def test_ktb_at_reference(self):
        power = units.thermal_noise_power(1.0)
        assert power == pytest.approx(units.BOLTZMANN * 290.0)

    def test_noise_figure_scales(self):
        base = units.thermal_noise_power(1e6)
        with_nf = units.thermal_noise_power(1e6, noise_figure_db=3.0)
        assert with_nf / base == pytest.approx(10 ** 0.3)

    def test_bandwidth_scales_linearly(self):
        assert units.thermal_noise_power(2e6) == pytest.approx(
            2 * units.thermal_noise_power(1e6))

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            units.thermal_noise_power(0.0)


class TestConstants:
    def test_free_space_impedance(self):
        assert units.ETA_0 == pytest.approx(376.73, rel=1e-4)

    def test_speed_of_light(self):
        assert units.SPEED_OF_LIGHT == pytest.approx(2.998e8, rel=1e-3)

    def test_eps0_mu0_consistency(self):
        c = 1.0 / math.sqrt(units.EPSILON_0 * units.MU_0)
        assert c == pytest.approx(units.SPEED_OF_LIGHT, rel=1e-6)
