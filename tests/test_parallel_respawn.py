"""Worker-death recovery in the campaign executor.

An ``experiments.parallel``/``crash`` fault SIGKILLs a worker process
mid-campaign (for real — the fault decision is keyed on the trial
index, so fork-started workers inherit the armed plan and agree on
which trial dies).  The executor must salvage completed results,
respawn the pool, resubmit the incomplete trials, and return results
bit-identical to an undisturbed serial run.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.experiments.parallel import CampaignExecutor
from repro.faults import FaultPlan, FaultSpec, inject
from repro.obs.registry import observed

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash faults reach workers via fork inheritance",
)


def _square(value):
    """Module-level trial (picklable by reference)."""
    return value * value


def _crash_plan(*indices):
    return FaultPlan(name="crash", specs=(
        FaultSpec(site="experiments.parallel", kind="crash",
                  schedule=tuple(indices)),))


class TestWorkerRespawn:
    def test_sigkilled_worker_is_respawned_and_campaign_completes(self):
        executor = CampaignExecutor(workers=2)
        arguments = [(value,) for value in range(8)]
        with observed() as registry:
            with inject(_crash_plan(3)):
                execution = executor.run(_square, arguments)
        assert execution.mode == "parallel"
        assert execution.results == [value * value for value in range(8)]
        counters = registry.snapshot()["counters"]
        assert counters["campaign.worker_respawns"] == 1
        # The respawned shard re-ran the crashed trial (attempt > 0
        # suppresses the fault), so the campaign is complete, in order.

    def test_multiple_crashes_within_budget(self):
        executor = CampaignExecutor(workers=2, max_respawns=3)
        arguments = [(value,) for value in range(10)]
        with observed() as registry:
            with inject(_crash_plan(1, 6)):
                execution = executor.run(_square, arguments)
        assert execution.results == [value * value
                                     for value in range(10)]
        respawns = registry.snapshot()["counters"][
            "campaign.worker_respawns"]
        assert 1 <= respawns <= 2

    def test_exhausted_respawn_budget_degrades_to_serial(self):
        # max_respawns=0: the first worker death exhausts the budget
        # and the run falls back to the serial loop — which never
        # SIGKILLs the main process (in_worker=False) and still
        # produces the full result set.
        executor = CampaignExecutor(workers=2, max_respawns=0)
        arguments = [(value,) for value in range(6)]
        with inject(_crash_plan(2)):
            execution = executor.run(_square, arguments)
        assert execution.mode == "serial"
        assert "BrokenProcessPool" in execution.fallback_reason
        assert execution.results == [value * value for value in range(6)]

    def test_serial_path_never_crashes_the_main_process(self):
        executor = CampaignExecutor(workers=1)
        with inject(_crash_plan(0, 1, 2)):
            execution = executor.run(_square, [(1,), (2,), (3,)])
        assert execution.mode == "serial"
        assert execution.results == [1, 4, 9]

    def test_unarmed_parallel_run_matches_serial(self):
        arguments = [(value,) for value in range(6)]
        parallel = CampaignExecutor(workers=2).run(_square, arguments)
        serial = CampaignExecutor(workers=1).run(_square, arguments)
        assert parallel.results == serial.results

    def test_max_respawns_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignExecutor(workers=1, max_respawns=-1)


def _instrumented_trial(value):
    """Trial that exercises every instrument kind in the worker."""
    from repro.obs.registry import active

    obs = active()
    if obs is not None:
        obs.counter("trial.units").increment(value)
        obs.counter("trial.calls").increment()
        obs.histogram("trial.value", (2.0, 5.0)).observe(float(value))
    return value


class TestWorkerTelemetryHomecoming:
    """Worker-process telemetry merges into the parent registry.

    Each trial runs under a fresh registry in its worker, and the
    executor ships the snapshot home in the result payload — so the
    parent's counters equal the sum over all trials and histogram
    observations survive the process boundary, with nothing lost.
    """

    def test_no_counts_lost_across_processes(self):
        values = list(range(1, 9))
        with observed() as registry:
            execution = CampaignExecutor(workers=2).run(
                _instrumented_trial, [(value,) for value in values])
        assert execution.results == values
        if execution.mode != "parallel":
            pytest.skip(f"pool unavailable: {execution.fallback_reason}")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["trial.calls"] == len(values)
        assert snapshot["counters"]["trial.units"] == sum(values)
        histogram = snapshot["histograms"]["trial.value"]
        assert histogram["count"] == len(values)
        assert histogram["sum"] == pytest.approx(sum(values))
        assert histogram["min"] == pytest.approx(min(values))
        assert histogram["max"] == pytest.approx(max(values))

    def test_respawned_campaign_still_merges_counts(self):
        values = list(range(6))
        with observed() as registry:
            with inject(_crash_plan(2)):
                execution = CampaignExecutor(workers=2).run(
                    _instrumented_trial,
                    [(value,) for value in values])
        assert execution.mode == "parallel"
        assert execution.results == values
        counters = registry.snapshot()["counters"]
        assert counters["campaign.worker_respawns"] == 1
        assert counters["trial.calls"] == len(values)
        assert counters["trial.units"] == sum(values)
