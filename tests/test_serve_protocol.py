"""JSON round-trips for the serve wire types and core dataclasses."""

from __future__ import annotations

import json

import pytest

from repro.core.estimator import ForceLocationEstimate
from repro.core.pipeline import PressReading
from repro.core.tracking import TouchEvent, TrackedSample
from repro.errors import ServeError
from repro.serve.protocol import (
    EstimateRequest,
    EstimateResponse,
    SensorConfig,
)


class TestCoreSerialization:
    def test_estimate_roundtrip(self):
        estimate = ForceLocationEstimate(force=3.25, location=0.042,
                                         residual=0.011, touched=True)
        payload = json.loads(json.dumps(estimate.to_dict()))
        assert ForceLocationEstimate.from_dict(payload) == estimate

    def test_press_reading_roundtrip(self):
        reading = PressReading(
            phi1=0.61, phi2=-0.42,
            estimate=ForceLocationEstimate(force=2.0, location=0.03,
                                           residual=0.002, touched=True))
        payload = json.loads(json.dumps(reading.to_dict()))
        restored = PressReading.from_dict(payload)
        assert restored == reading
        assert restored.force == reading.estimate.force

    def test_tracked_sample_roundtrip(self):
        sample = TrackedSample(time=0.125, phi1=0.3, phi2=0.5,
                               touched=True, force=4.0, location=0.05)
        payload = json.loads(json.dumps(sample.to_dict()))
        assert TrackedSample.from_dict(payload) == sample

    def test_touch_event_roundtrip(self):
        event = TouchEvent(onset=0.1, release=0.4, peak_force=5.5,
                           mean_location=0.033)
        payload = json.loads(json.dumps(event.to_dict()))
        assert TouchEvent.from_dict(payload) == event

    def test_dicts_are_plain_scalars(self):
        import numpy as np

        estimate = ForceLocationEstimate(
            force=np.float64(1.0), location=np.float64(0.02),
            residual=np.float64(0.0), touched=np.bool_(True))
        payload = estimate.to_dict()
        assert all(type(value) in (float, bool)
                   for value in payload.values())
        json.dumps(payload)  # must not raise


class TestSensorConfig:
    def test_roundtrip(self):
        config = SensorConfig(carrier_frequency=2.4e9, fast=False,
                              touch_threshold_deg=8.0)
        assert SensorConfig.from_dict(config.to_dict()) == config

    def test_defaults_fill_missing_keys(self):
        assert SensorConfig.from_dict({}) == SensorConfig()
        partial = SensorConfig.from_dict({"carrier_frequency": 2.4e9})
        assert partial.carrier_frequency == 2.4e9
        assert partial.fast == SensorConfig().fast

    def test_hashable_cache_key(self):
        a = SensorConfig(carrier_frequency=900e6)
        b = SensorConfig(carrier_frequency=900e6)
        assert len({a, b}) == 1


class TestEstimateRequest:
    def test_json_roundtrip_with_hint(self):
        request = EstimateRequest(sensor_id="s-1", sequence=12,
                                  time=0.12, phi1=0.4, phi2=-0.2,
                                  location_hint=0.04)
        assert EstimateRequest.from_json(request.to_json()) == request

    def test_json_roundtrip_without_hint(self):
        request = EstimateRequest(sensor_id="s-2", sequence=0,
                                  time=0.0, phi1=0.0, phi2=0.0)
        restored = EstimateRequest.from_json(request.to_json())
        assert restored == request
        assert restored.location_hint is None

    def test_malformed_raises_serve_error(self):
        with pytest.raises(ServeError):
            EstimateRequest.from_dict({"sensor_id": "x"})


class TestEstimateResponse:
    def test_json_roundtrip(self):
        response = EstimateResponse(
            sensor_id="s-1", sequence=3, time=0.03,
            estimate=ForceLocationEstimate(force=1.5, location=0.025,
                                           residual=0.01, touched=True),
            batch_size=16, latency_s=0.0021)
        assert EstimateResponse.from_json(response.to_json()) == response

    def test_convenience_properties(self):
        response = EstimateResponse(
            sensor_id="s", sequence=0, time=0.0,
            estimate=ForceLocationEstimate(force=2.0, location=0.05,
                                           residual=0.0, touched=True))
        assert response.force == 2.0
        assert response.location == 0.05
        assert response.touched is True

    def test_malformed_raises_serve_error(self):
        with pytest.raises(ServeError):
            EstimateResponse.from_dict({"sensor_id": "x", "sequence": 1})
