"""Backscatter tag tests (paper sections 3.2 / 4.3, Figs. 7-8)."""

import numpy as np
import pytest

from repro.errors import SensorError
from repro.sensor.clock import naive_clocking
from repro.sensor.tag import TagState, WiForceTag

CARRIER = np.array([900e6])


class TestStateReflections:
    def test_four_states_present(self, tag):
        states = tag.state_reflections(CARRIER, TagState())
        assert set(states) == {(False, False), (False, True),
                               (True, False), (True, True)}

    def test_off_off_is_small(self, tag):
        states = tag.state_reflections(CARRIER, TagState())
        assert abs(states[(False, False)][0]) < 0.2

    def test_single_on_reflects_strongly(self, tag):
        states = tag.state_reflections(CARRIER, TagState())
        assert abs(states[(True, False)][0]) > 0.25

    def test_untouched_both_on_includes_cross_coupling(self, tag):
        """With no press the line conducts, so the both-on state leaks
        energy between the branches (the intermodulation source)."""
        states = tag.state_reflections(CARRIER, TagState())
        both_on = states[(True, True)][0]
        assert abs(both_on) > 0.3

    def test_press_removes_cross_coupling(self, tag):
        touched = tag.state_reflections(CARRIER, TagState(4.0, 0.04))
        untouched = tag.state_reflections(CARRIER, TagState())
        assert (abs(touched[(True, True)][0])
                < abs(untouched[(True, True)][0]))

    def test_press_changes_single_on_phase(self, tag):
        touched = tag.state_reflections(CARRIER, TagState(4.0, 0.04))
        untouched = tag.state_reflections(CARRIER, TagState())
        delta = np.angle(touched[(True, False)][0]
                         * np.conj(untouched[(True, False)][0]))
        assert abs(delta) > np.radians(5.0)

    def test_cache_returns_consistent_values(self, tag):
        first = tag.state_reflections(CARRIER, TagState(2.0, 0.04))
        second = tag.state_reflections(CARRIER, TagState(2.0, 0.04))
        np.testing.assert_allclose(first[(True, False)],
                                   second[(True, False)])


class TestStateCacheEviction:
    def test_hot_state_survives_65_distinct_insertions(self, transducer):
        """LRU regression: touching the baseline between new presses
        must keep it cached through a sweep longer than the bound."""
        tag = WiForceTag(transducer)
        hot = TagState()
        baseline = tag.state_reflections(CARRIER, hot)
        for step in range(65):
            tag.state_reflections(CARRIER,
                                  TagState(1.0 + 0.05 * step, 0.04))
            assert tag.state_reflections(CARRIER, hot) is baseline

    def test_cache_size_stays_bounded(self, transducer):
        tag = WiForceTag(transducer)
        for step in range(WiForceTag.STATE_CACHE_LIMIT + 20):
            tag.state_reflections(CARRIER,
                                  TagState(1.0 + 0.05 * step, 0.04))
        assert len(tag._state_cache) == WiForceTag.STATE_CACHE_LIMIT

    def test_least_recently_used_is_evicted_first(self, transducer):
        tag = WiForceTag(transducer)
        first = TagState(1.0, 0.04)
        tag.state_reflections(CARRIER, first)
        for step in range(WiForceTag.STATE_CACHE_LIMIT):
            tag.state_reflections(CARRIER,
                                  TagState(2.0 + 0.05 * step, 0.04))
        key = (first.force, first.location, CARRIER.tobytes())
        assert key not in tag._state_cache


class TestReflectionSeries:
    def test_shape(self, tag):
        times = np.linspace(0.0, 4e-3, 256)
        series = tag.reflection_series(CARRIER, times, TagState())
        assert series.shape == (256, 1)

    def test_piecewise_constant_over_states(self, tag):
        times = np.array([0.0, 0.1e-3])  # both inside clock1's window
        series = tag.reflection_series(CARRIER, times, TagState())
        assert series[0, 0] == series[1, 0]

    def test_rejects_negative_force(self, tag):
        with pytest.raises(SensorError):
            tag.reflection_series(CARRIER, np.array([0.0]),
                                  TagState(-1.0, 0.0))

    def test_clock_offset_shifts_windows(self, transducer):
        slow = WiForceTag(transducer, clock_offset_ppm=0.0)
        fast = WiForceTag(transducer, clock_offset_ppm=50_000.0)  # 5%
        # Late enough that a 5% clock error moves a window edge.
        times = np.full(1, 0.00499)
        state = TagState()
        value_slow = slow.reflection_series(CARRIER, times, state)[0, 0]
        value_fast = fast.reflection_series(CARRIER, times, state)[0, 0]
        assert value_slow != value_fast


class TestModulationSpectrum:
    def test_wiforce_tones_present(self, tag):
        offsets, spectrum = tag.modulation_spectrum(900e6,
                                                    TagState(3.0, 0.04))
        def tone_db(f):
            index = int(np.argmin(np.abs(offsets - f)))
            return 20 * np.log10(abs(spectrum[index]) + 1e-18)
        floor = np.median(20 * np.log10(np.abs(spectrum) + 1e-18))
        assert tone_db(1e3) > floor + 40.0
        assert tone_db(4e3) > floor + 40.0

    def test_dc_dominated_by_static_reflection(self, tag):
        offsets, spectrum = tag.modulation_spectrum(900e6, TagState())
        dc = abs(spectrum[int(np.argmin(np.abs(offsets)))])
        assert dc > 0.0

    def test_naive_scheme_produces_intermod_tones(self, transducer):
        """The naive tag smears energy into 3 kHz (fs1+fs2 mixing)."""
        tag = WiForceTag(transducer, clocking=naive_clocking(1e3))
        offsets, spectrum = tag.modulation_spectrum(900e6, TagState())
        def tone(f):
            return abs(spectrum[int(np.argmin(np.abs(offsets - f)))])
        assert tone(3e3) > 1e-4

    def test_spectrum_frequencies_sorted(self, tag):
        offsets, _ = tag.modulation_spectrum(900e6, TagState())
        assert np.all(np.diff(offsets) > 0)


class TestTagProperties:
    def test_transducer_exposed(self, tag, transducer):
        assert tag.transducer is transducer

    def test_default_clocking_validates(self, tag):
        tag.clocking.validate()

    def test_antenna_gain_default(self, tag):
        assert tag.antenna_gain_dbi == pytest.approx(2.0)
