"""Power-budget tests (paper's <1 uW claim and the Fig. 3 contrast)."""

import pytest

from repro.baselines.digital_backscatter import (
    DigitalBackscatterTag,
    compare_power,
    digital_backscatter_power_budget,
)
from repro.errors import ConfigurationError
from repro.sensor.power import (
    cmos_switching_power,
    wiforce_power_budget,
)


class TestCmosSwitchingPower:
    def test_cv2f(self):
        assert cmos_switching_power(1e-12, 1.0, 1e6) == pytest.approx(1e-6)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            cmos_switching_power(-1e-12, 1.0, 1e6)


class TestWiForceBudget:
    def test_under_one_microwatt(self):
        """The paper's headline power claim (sections 1, 4.3)."""
        assert wiforce_power_budget().total_uw < 1.0

    def test_total_sums_parts(self):
        budget = wiforce_power_budget()
        assert budget.total == pytest.approx(
            budget.clock_generation + budget.switch_drive + budget.leakage)

    def test_scales_with_clock(self):
        slow = wiforce_power_budget(clock_frequency=1e3)
        fast = wiforce_power_budget(clock_frequency=10e3)
        assert fast.total > slow.total

    def test_leakage_floor(self):
        budget = wiforce_power_budget(clock_frequency=1.0, leakage=50e-9)
        assert budget.total >= 50e-9

    def test_rejects_bad_supply(self):
        with pytest.raises(ConfigurationError):
            wiforce_power_budget(supply_voltage=0.0)

    def test_rejects_negative_leakage(self):
        with pytest.raises(ConfigurationError):
            wiforce_power_budget(leakage=-1e-9)


class TestDigitalBudget:
    def test_digital_order_of_magnitude_higher(self):
        """Fig. 3's architectural contrast, quantified."""
        wiforce = wiforce_power_budget()
        digital = digital_backscatter_power_budget()
        _, _, ratio = compare_power(wiforce, digital)
        assert ratio > 10.0

    def test_mcu_dominates(self):
        budget = digital_backscatter_power_budget()
        assert budget.mcu > budget.adc
        assert budget.mcu > budget.modulator

    def test_rejects_bad_duty(self):
        with pytest.raises(ConfigurationError):
            digital_backscatter_power_budget(mcu_duty=1.5)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            digital_backscatter_power_budget(sample_rate=0.0)


class TestDigitalTag:
    def test_quantisation_step(self):
        tag = DigitalBackscatterTag(adc_bits=10, full_scale=10.0)
        assert tag.lsb == pytest.approx(10.0 / 1024)

    def test_sample_quantised(self, rng):
        tag = DigitalBackscatterTag(adc_bits=4, full_scale=8.0,
                                    frontend_noise_std=0.0, rng=rng)
        sample = tag.sample(3.3)
        assert sample % tag.lsb == pytest.approx(0.0, abs=1e-12)

    def test_sample_close_to_truth(self, rng):
        tag = DigitalBackscatterTag(rng=rng)
        assert tag.sample(5.0) == pytest.approx(5.0, abs=0.1)

    def test_sample_clips(self, rng):
        tag = DigitalBackscatterTag(full_scale=10.0,
                                    frontend_noise_std=0.0, rng=rng)
        assert tag.sample(50.0) <= 10.0

    def test_latency_includes_sampling_and_link(self):
        tag = DigitalBackscatterTag(sample_rate=100.0)
        latency = tag.latency_bound(payload_bits=32, link_rate=50e3)
        assert latency == pytest.approx(0.01 + 32 / 50e3)

    def test_rejects_negative_force(self, rng):
        with pytest.raises(ConfigurationError):
            DigitalBackscatterTag(rng=rng).sample(-1.0)

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            DigitalBackscatterTag(adc_bits=0)
