"""Gateway framing fuzz: hostile bytes never crash the gateway.

Two layers, same contract as ``tests/test_serve_protocol_fuzz.py``:

* The pure parsers (:func:`repro.gateway.http.parse_request_head`,
  :func:`repro.gateway.websocket.parse_frame`, ...) either return
  their result or raise :class:`repro.errors.ProtocolError` — never a
  bare ``ValueError`` / ``IndexError`` / ``UnicodeDecodeError`` /
  ``OverflowError``.
* A live gateway fed raw hostile bytes — malformed request lines,
  truncated or unmasked or oversized WebSocket frames, mid-session
  garbage — answers with an error response or a clean close.  The
  ``gateway.internal_errors`` counter stays at zero (a nonzero count
  means an exception crossed the zero-crash boundary), and the server
  keeps serving new connections afterwards.
"""

from __future__ import annotations

import asyncio
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.gateway import (
    Gateway,
    GatewayLimits,
    TenantTable,
    WebSocketClient,
    estimate_over_ws,
    http,
    websocket,
)
from repro.serve import (
    BatchPolicy,
    EstimateRequest,
    InferenceService,
    SensorConfig,
)

_DATA_OPCODES = st.sampled_from((websocket.OP_TEXT,
                                 websocket.OP_BINARY))
_CONTROL_OPCODES = st.sampled_from(sorted(websocket.CONTROL_OPCODES))

#: Header-safe ASCII tokens (no separators/control chars; the wire
#: renderer is latin-1 so the strategy stays inside ASCII).
_TOKEN = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz"
             "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_",
    min_size=1, max_size=12)


class TestPureHttpParsers:
    @settings(max_examples=150, deadline=None)
    @given(head=st.binary(max_size=200))
    def test_parse_request_head_is_total(self, head):
        try:
            method, target, headers = http.parse_request_head(head)
        except ProtocolError:
            return
        assert method in http.KNOWN_METHODS
        assert isinstance(headers, dict)

    @settings(max_examples=150, deadline=None)
    @given(head=st.binary(max_size=200))
    def test_parse_response_head_is_total(self, head):
        try:
            status, headers = http.parse_response_head(head)
        except ProtocolError:
            return
        assert 100 <= status <= 599

    @settings(max_examples=100, deadline=None)
    @given(value=st.text(max_size=16))
    def test_content_length_is_total(self, value):
        limits = GatewayLimits()
        try:
            length = http.content_length({"content-length": value},
                                         limits)
        except ProtocolError:
            return
        assert 0 <= length <= limits.max_body_bytes

    @settings(max_examples=100, deadline=None)
    @given(method=st.sampled_from(http.KNOWN_METHODS),
           path=_TOKEN, names=st.lists(_TOKEN, max_size=3,
                                       unique_by=str.lower),
           value=_TOKEN)
    def test_request_render_parse_roundtrip(self, method, path, names,
                                            value):
        headers = {name: value for name in names}
        wire = http.render_request(method, f"/{path}",
                                   headers=headers)
        parsed_method, target, parsed = http.parse_request_head(wire)
        assert parsed_method == method
        assert target == f"/{path}"
        for name in names:
            assert parsed[name.lower()] == value


class TestPureFrameParser:
    @settings(max_examples=200, deadline=None)
    @given(buffer=st.binary(max_size=80),
           cap=st.integers(min_value=1, max_value=1 << 20))
    def test_parse_frame_is_total(self, buffer, cap):
        try:
            parsed = websocket.parse_frame(buffer, cap)
        except ProtocolError:
            return
        if parsed is not None:
            frame, consumed = parsed
            assert 2 <= consumed <= len(buffer)
            assert len(frame.payload) <= cap

    @settings(max_examples=150, deadline=None)
    @given(opcode=_DATA_OPCODES,
           payload=st.binary(max_size=300),
           masked=st.booleans(),
           key=st.binary(min_size=4, max_size=4))
    def test_encode_parse_roundtrip(self, opcode, payload, masked,
                                    key):
        wire = websocket.encode_frame(
            opcode, payload, mask_key=key if masked else None)
        frame, consumed = websocket.parse_frame(wire)
        assert consumed == len(wire)
        assert frame.opcode == opcode
        assert frame.payload == payload
        assert frame.masked is masked
        assert frame.fin

    @settings(max_examples=100, deadline=None)
    @given(opcode=_DATA_OPCODES, payload=st.binary(max_size=200),
           data=st.data())
    def test_prefix_of_valid_frame_parses_to_none(self, opcode,
                                                  payload, data):
        """Truncation is "read more", never an error or a bad frame."""
        wire = websocket.encode_frame(opcode, payload,
                                      mask_key=b"\x01\x02\x03\x04")
        cut = data.draw(st.integers(min_value=0,
                                    max_value=len(wire) - 1))
        assert websocket.parse_frame(wire[:cut]) is None

    @settings(max_examples=50, deadline=None)
    @given(opcode=_CONTROL_OPCODES,
           payload=st.binary(min_size=126, max_size=200))
    def test_oversized_control_frames_rejected(self, opcode, payload):
        with pytest.raises(ProtocolError):
            websocket.encode_frame(opcode, payload)
        # Hand-build the illegal frame the encoder refuses to make.
        wire = bytes([0x80 | opcode, 126]) \
            + len(payload).to_bytes(2, "big") + payload
        with pytest.raises(ProtocolError):
            websocket.parse_frame(wire)

    def test_declared_oversize_rejected_before_payload(self):
        head = bytes([0x80 | websocket.OP_TEXT, 127]) \
            + (1 << 40).to_bytes(8, "big")
        with pytest.raises(ProtocolError):
            websocket.parse_frame(head, max_payload=1 << 20)


def _gateway(model):
    service = InferenceService(
        policy=BatchPolicy(max_batch=8, max_delay_s=0.001),
        model_factory=lambda config: model)
    return Gateway(service, tenants=TenantTable(allow_anonymous=True))


async def _slam(host, port, payload, timeout=5.0):
    """Write raw bytes, half-close, read everything the server says."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        if writer.can_write_eof():
            writer.write_eof()
        return await asyncio.wait_for(reader.read(1 << 16), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


def _assert_zero_crash(gateway):
    counters = gateway.telemetry.snapshot()["counters"]
    assert "gateway.internal_errors" not in counters, counters


async def _still_serves(host, port, model_900):
    client = await WebSocketClient.connect(host, port)
    reply, _ = await estimate_over_ws(client, EstimateRequest(
        sensor_id="after-fuzz", sequence=0, time=0.0, phi1=0.5,
        phi2=0.4, config=SensorConfig()).to_dict())
    await client.close()
    assert reply["type"] == "estimate"


class TestHostileSockets:
    @settings(max_examples=25, deadline=None)
    @given(payload=st.binary(min_size=1, max_size=400))
    def test_http_garbage_never_crashes(self, payload, model_900):
        async def scenario():
            async with _gateway(model_900) as gateway:
                host, port = gateway.address
                answer = await _slam(host, port, payload)
                _assert_zero_crash(gateway)
                if answer:
                    # Any answer is a well-formed HTTP error.
                    assert answer.startswith(b"HTTP/1.1 4")

        asyncio.run(scenario())

    @settings(max_examples=20, deadline=None)
    @given(line=st.text(max_size=60).map(
        lambda s: s.replace("\r", "").replace("\n", "")))
    def test_malformed_request_lines_answer_400(self, line, model_900):
        payload = (line + "\r\n\r\n").encode("utf-8", "replace")

        async def scenario():
            async with _gateway(model_900) as gateway:
                host, port = gateway.address
                answer = await _slam(host, port, payload)
                _assert_zero_crash(gateway)
                if answer:
                    assert answer.startswith(b"HTTP/1.1 4")

        asyncio.run(scenario())

    @settings(max_examples=20, deadline=None)
    @given(garbage=st.binary(min_size=1, max_size=200))
    def test_mid_session_ws_garbage_closes_cleanly(self, garbage,
                                                   model_900):
        """Valid handshake, then junk: close (often 1002), no crash."""

        async def scenario():
            async with _gateway(model_900) as gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(host, port)
                client._writer.write(garbage)
                await client._writer.drain()
                # Nudge with a valid masked close so a junk prefix
                # that happens to parse as an incomplete frame still
                # terminates the read loop.
                try:
                    await client.close(timeout=2.0)
                except (ConnectionError, ProtocolError):
                    pass
                _assert_zero_crash(gateway)
                await _still_serves(host, port, model_900)

        asyncio.run(scenario())

    @settings(max_examples=10, deadline=None)
    @given(payload=st.binary(max_size=60))
    def test_unmasked_client_frames_are_rejected(self, payload,
                                                 model_900):
        async def scenario():
            async with _gateway(model_900) as gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(host, port)
                # RFC violation: a client frame without a mask.
                client._writer.write(websocket.encode_frame(
                    websocket.OP_TEXT, payload))
                await client._writer.drain()
                closed = False
                try:
                    while True:
                        frame = await asyncio.wait_for(
                            client._recv_frame(), 5.0)
                        if frame.opcode == websocket.OP_CLOSE:
                            code, _ = websocket.parse_close(
                                frame.payload)
                            assert code \
                                == websocket.CLOSE_PROTOCOL_ERROR
                            closed = True
                            break
                except Exception:  # noqa: BLE001 - EOF variants ok
                    pass
                else:
                    assert closed
                _assert_zero_crash(gateway)
                await _still_serves(host, port, model_900)

        asyncio.run(scenario())

    def test_oversized_ws_frame_is_refused_without_reading_it(
            self, model_900):
        """A hostile length prefix cannot balloon server memory."""

        async def scenario():
            service = InferenceService(
                model_factory=lambda config: model_900)
            gateway = Gateway(
                service, tenants=TenantTable(allow_anonymous=True),
                limits=GatewayLimits(max_ws_payload=1024))
            async with gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(host, port)
                # Declare 1 GiB; send only the header.
                head = bytes([0x80 | websocket.OP_TEXT, 0x80 | 127]) \
                    + (1 << 30).to_bytes(8, "big") + os.urandom(4)
                client._writer.write(head)
                await client._writer.drain()
                frame = await asyncio.wait_for(client._recv_frame(),
                                               5.0)
                assert frame.opcode == websocket.OP_CLOSE
                code, _ = websocket.parse_close(frame.payload)
                assert code == websocket.CLOSE_PROTOCOL_ERROR
                _assert_zero_crash(gateway)

        asyncio.run(scenario())

    def test_truncated_http_body_answers_400(self, model_900):
        payload = (b"POST /v1/estimate HTTP/1.1\r\n"
                   b"content-length: 50\r\n\r\nshort")

        async def scenario():
            async with _gateway(model_900) as gateway:
                host, port = gateway.address
                answer = await _slam(host, port, payload)
                _assert_zero_crash(gateway)
                assert answer.startswith(b"HTTP/1.1 400")

        asyncio.run(scenario())

    def test_oversized_body_is_refused_by_declared_length(
            self, model_900):
        payload = (b"POST /v1/estimate HTTP/1.1\r\n"
                   b"content-length: 999999999\r\n\r\n")

        async def scenario():
            async with _gateway(model_900) as gateway:
                host, port = gateway.address
                answer = await _slam(host, port, payload)
                _assert_zero_crash(gateway)
                assert answer.startswith(b"HTTP/1.1 400")

        asyncio.run(scenario())
