"""Duty-cycled clocking tests (paper section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ClockingError, ConfigurationError
from repro.sensor.clock import (
    ClockingScheme,
    DutyCycleClock,
    naive_clocking,
    wiforce_clocking,
)


class TestDutyCycleClock:
    def test_on_fraction_matches_duty(self):
        clock = DutyCycleClock(1e3, duty=0.25)
        t = (np.arange(40000) + 0.5) * (4e-3 / 40000)
        assert clock.is_on(t).mean() == pytest.approx(0.25, abs=1e-3)

    def test_phase_shifts_window(self):
        clock = DutyCycleClock(1e3, duty=0.25, phase=0.5)
        assert not clock.is_on(0.0)
        assert clock.is_on(0.55e-3)

    def test_period(self):
        assert DutyCycleClock(2e3, 0.25).period == pytest.approx(0.5e-3)

    def test_dc_coefficient_is_duty(self):
        clock = DutyCycleClock(1e3, duty=0.25)
        assert clock.fourier_coefficient(0) == pytest.approx(0.25)

    def test_fourier_against_fft(self):
        """Analytic coefficients match a numerical FFT of the indicator."""
        clock = DutyCycleClock(1e3, duty=0.25, phase=0.5)
        n = 65536
        t = (np.arange(n) + 0.5) / (n * clock.frequency)
        indicator = clock.is_on(t).astype(float)
        spectrum = np.fft.fft(indicator) / n
        for harmonic in (1, 2, 3, 5):
            expected = clock.fourier_coefficient(harmonic)
            assert spectrum[harmonic] == pytest.approx(expected, abs=2e-4)

    def test_quarter_duty_nulls_fourth_harmonic(self):
        """The duty-cycle null the whole scheme is built on."""
        clock = DutyCycleClock(1e3, duty=0.25)
        assert abs(clock.fourier_coefficient(4)) < 1e-12
        assert abs(clock.fourier_coefficient(8)) < 1e-12
        assert abs(clock.fourier_coefficient(1)) > 0.1

    def test_half_duty_nulls_even_harmonics(self):
        clock = DutyCycleClock(1e3, duty=0.5)
        assert abs(clock.fourier_coefficient(2)) < 1e-12
        assert abs(clock.fourier_coefficient(3)) > 0.05

    def test_harmonic_frequencies(self):
        clock = DutyCycleClock(1e3, 0.25)
        np.testing.assert_allclose(clock.harmonic_frequencies(3),
                                   [1e3, 2e3, 3e3])

    def test_rejects_bad_duty(self):
        with pytest.raises(ConfigurationError):
            DutyCycleClock(1e3, duty=0.0)
        with pytest.raises(ConfigurationError):
            DutyCycleClock(1e3, duty=1.0)

    def test_rejects_bad_phase(self):
        with pytest.raises(ConfigurationError):
            DutyCycleClock(1e3, duty=0.25, phase=1.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigurationError):
            DutyCycleClock(0.0, 0.25)

    @settings(max_examples=25, deadline=None)
    @given(duty=st.floats(min_value=0.05, max_value=0.95),
           phase=st.floats(min_value=0.0, max_value=0.99))
    def test_coefficient_magnitude_independent_of_phase(self, duty, phase):
        base = DutyCycleClock(1e3, duty=duty, phase=0.0)
        shifted = DutyCycleClock(1e3, duty=duty, phase=phase)
        assert abs(shifted.fourier_coefficient(1)) == pytest.approx(
            abs(base.fourier_coefficient(1)), abs=1e-12)


class TestWiForceScheme:
    def test_on_windows_disjoint(self):
        """The core requirement: both switches never on together."""
        scheme = wiforce_clocking(1e3)
        assert scheme.overlap_fraction() == 0.0

    def test_validates(self):
        wiforce_clocking(1e3).validate()

    def test_readout_tones(self):
        scheme = wiforce_clocking(1e3)
        assert scheme.readout_port1 == 1e3
        assert scheme.readout_port2 == 4e3

    def test_collision_at_two_fs(self):
        """Paper: the combs collide at 2 fs but not at fs or 4 fs."""
        scheme = wiforce_clocking(1e3)
        collisions = scheme.collision_tones()
        assert 2e3 in collisions
        assert 1e3 not in collisions
        assert 4e3 not in collisions

    def test_port2_tone_not_nulled(self):
        scheme = wiforce_clocking(1e3)
        harmonic = int(round(scheme.readout_port2
                             / scheme.clock_port2.frequency))
        assert abs(scheme.clock_port2.fourier_coefficient(harmonic)) > 0.05

    def test_port1_clock_has_no_energy_at_port2_tone(self):
        scheme = wiforce_clocking(1e3)
        assert abs(scheme.clock_port1.fourier_coefficient(4)) < 1e-12

    def test_scales_with_base_frequency(self):
        scheme = wiforce_clocking(2e3)
        assert scheme.readout_port2 == 8e3
        scheme.validate()

    def test_states_shape(self):
        scheme = wiforce_clocking(1e3)
        t = np.linspace(0.0, 1e-3, 100)
        on1, on2 = scheme.states(t)
        assert on1.shape == on2.shape == (100,)


class TestNaiveScheme:
    def test_overlaps(self):
        assert naive_clocking(1e3).overlap_fraction() > 0.2

    def test_validate_raises(self):
        with pytest.raises(ClockingError):
            naive_clocking(1e3).validate()


class TestSchemeValidation:
    def test_rejects_non_harmonic_tone(self):
        scheme = ClockingScheme(
            clock_port1=DutyCycleClock(1e3, 0.25, 0.0),
            clock_port2=DutyCycleClock(2e3, 0.25, 0.5),
            readout_port1=1.5e3,
            readout_port2=4e3,
        )
        with pytest.raises(ClockingError):
            scheme.validate()

    def test_rejects_nulled_tone(self):
        scheme = ClockingScheme(
            clock_port1=DutyCycleClock(1e3, 0.25, 0.0),
            clock_port2=DutyCycleClock(2e3, 0.25, 0.5),
            readout_port1=4e3,  # nulled by the 25% duty
            readout_port2=4e3,
        )
        with pytest.raises(ClockingError):
            scheme.validate()
