"""Protocol decoder fuzzing: hostile wire input never leaks raw errors.

The transport contract (see ``repro.serve.protocol``) is that every
``from_dict`` / ``from_json`` decoder either returns its dataclass or
raises :class:`repro.errors.ProtocolError` — a malformed, truncated,
or type-confused payload must never surface a bare ``KeyError`` /
``TypeError`` / ``AttributeError`` that would crash a transport
adapter.  Hypothesis drives three payload shapes at each decoder:
arbitrary JSON-like junk, valid payloads with one field replaced by
junk, and valid payloads with one key deleted.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimator import ForceLocationEstimate
from repro.errors import ProtocolError, ServeError
from repro.serve.protocol import (
    EstimateRequest,
    EstimateResponse,
    SensorConfig,
)

#: Arbitrary JSON-like values (what a hostile client can actually send).
_JUNK = st.recursive(
    st.none() | st.booleans() | st.integers()
    | st.floats(allow_nan=True, allow_infinity=True)
    | st.text(max_size=8),
    lambda children: (st.lists(children, max_size=3)
                      | st.dictionaries(st.text(max_size=8), children,
                                        max_size=3)),
    max_leaves=8,
)

_VALID_REQUEST = EstimateRequest(
    sensor_id="s-0", sequence=3, time=0.25, phi1=0.5, phi2=0.4,
    config=SensorConfig(), location_hint=0.03).to_dict()

_VALID_RESPONSE = EstimateResponse(
    sensor_id="s-0", sequence=3, time=0.25,
    estimate=ForceLocationEstimate(force=2.0, location=0.03,
                                   residual=0.01, touched=True),
    batch_size=4, latency_s=0.002, quality="recovered").to_dict()

_DECODERS = [
    pytest.param(SensorConfig.from_dict, SensorConfig,
                 SensorConfig().to_dict(), id="config"),
    pytest.param(EstimateRequest.from_dict, EstimateRequest,
                 _VALID_REQUEST, id="request"),
    pytest.param(EstimateResponse.from_dict, EstimateResponse,
                 _VALID_RESPONSE, id="response"),
]


def _decode_or_protocol_error(decoder, expected_type, payload):
    """The whole contract in one helper."""
    try:
        decoded = decoder(payload)
    except ProtocolError:
        return None
    assert isinstance(decoded, expected_type)
    return decoded


class TestFromDictFuzz:
    @pytest.mark.parametrize("decoder,expected_type,valid", _DECODERS)
    @settings(max_examples=150, deadline=None)
    @given(payload=_JUNK)
    def test_arbitrary_junk(self, decoder, expected_type, valid,
                            payload):
        _decode_or_protocol_error(decoder, expected_type, payload)

    @pytest.mark.parametrize("decoder,expected_type,valid", _DECODERS)
    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_type_confused_field(self, decoder, expected_type, valid,
                                 data):
        if not valid:
            pytest.skip("no required fields to confuse")
        payload = dict(valid)
        key = data.draw(st.sampled_from(sorted(payload)))
        payload[key] = data.draw(_JUNK)
        _decode_or_protocol_error(decoder, expected_type, payload)

    @pytest.mark.parametrize("decoder,expected_type,valid", _DECODERS)
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_truncated_payload(self, decoder, expected_type, valid,
                               data):
        if not valid:
            pytest.skip("every field has a default")
        payload = dict(valid)
        drop = data.draw(st.sets(st.sampled_from(sorted(payload)),
                                 min_size=1))
        for key in drop:
            payload.pop(key)
        _decode_or_protocol_error(decoder, expected_type, payload)


class TestFromJsonFuzz:
    @settings(max_examples=100, deadline=None)
    @given(text=st.text(max_size=64))
    def test_arbitrary_text(self, text):
        for decoder, expected_type in ((EstimateRequest.from_json,
                                        EstimateRequest),
                                       (EstimateResponse.from_json,
                                        EstimateResponse)):
            _decode_or_protocol_error(decoder, expected_type, text)

    @pytest.mark.parametrize("payload", [None, 42, b"\xff\xfe", [],
                                         object()])
    def test_non_text_json_is_typed(self, payload):
        with pytest.raises(ProtocolError):
            EstimateRequest.from_json(payload)


class TestContractDetails:
    def test_protocol_error_is_a_serve_error(self):
        assert issubclass(ProtocolError, ServeError)

    def test_valid_payloads_still_decode(self):
        request = EstimateRequest.from_dict(_VALID_REQUEST)
        assert request.to_dict() == _VALID_REQUEST
        response = EstimateResponse.from_dict(_VALID_RESPONSE)
        assert response.to_dict() == _VALID_RESPONSE
        assert response.quality == "recovered"

    def test_quality_defaults_ok_on_old_payloads(self):
        payload = dict(_VALID_RESPONSE)
        del payload["quality"]
        assert EstimateResponse.from_dict(payload).quality == "ok"
