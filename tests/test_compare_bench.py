"""The perf-regression gate: benchmarks/compare_bench.py.

The script lives in ``benchmarks/`` (not a package), so it is loaded
via importlib straight from its path — exactly how CI executes it.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (Path(__file__).parent.parent / "benchmarks"
           / "compare_bench.py")


def _load():
    spec = importlib.util.spec_from_file_location("compare_bench",
                                                  _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare_bench = _load()

ESTIMATOR_BASELINE = {
    "n_samples": 1000,
    "scalar_seconds": 0.60,
    "batch_seconds": 0.10,
    "batch_speedup": 6.0,
}

SERVE_BASELINE = {
    "speedup_vs_serial": 2.0,
    "service": {"throughput_rps": 4000.0},
    "serial_baseline": {"throughput_rps": 2000.0},
}


class TestExtractMetrics:
    def test_estimator_schema_ratio_only(self):
        metrics = compare_bench.extract_metrics(ESTIMATOR_BASELINE)
        assert metrics == {"batch_speedup": 6.0}

    def test_estimator_schema_absolute(self):
        metrics = compare_bench.extract_metrics(ESTIMATOR_BASELINE,
                                                absolute=True)
        assert metrics["batch_inversions_per_s"] == pytest.approx(10000.0)
        assert metrics["scalar_inversions_per_s"] == pytest.approx(
            1000 / 0.60)

    def test_serve_schema(self):
        assert compare_bench.extract_metrics(SERVE_BASELINE) == {
            "speedup_vs_serial": 2.0}
        absolute = compare_bench.extract_metrics(SERVE_BASELINE,
                                                 absolute=True)
        assert absolute["service_throughput_rps"] == 4000.0
        assert absolute["serial_throughput_rps"] == 2000.0

    def test_cache_schema(self):
        report = {"warm_speedup": 3.8, "cold_seconds": 7.0,
                  "warm_seconds": 1.85}
        assert compare_bench.extract_metrics(report) == {
            "warm_speedup": 3.8}

    def test_reader_schema(self):
        report = {"cold_speedup": 24.8, "oracle_frames_per_s": 2.4e5,
                  "fast_frames_per_s": 5.9e6,
                  "stream_batch_speedup": 0.96}
        assert compare_bench.extract_metrics(report) == {
            "cold_speedup": 24.8}
        absolute = compare_bench.extract_metrics(report, absolute=True)
        assert absolute["fast_frames_per_s"] == 5.9e6
        assert absolute["oracle_frames_per_s"] == 2.4e5

    def test_gateway_schema(self):
        report = {
            "gateway_vs_inprocess": 0.62,
            "gateway": {"rejection_rate": 0.25,
                        "throughput_rps": 4200.0,
                        "p50_latency_ms": 105.0,
                        "p99_latency_ms": 115.0},
        }
        assert compare_bench.extract_metrics(report) == {
            "gateway_vs_inprocess": 0.62,
            "gateway_accept_rate": 0.75}
        absolute = compare_bench.extract_metrics(report, absolute=True)
        assert absolute["gateway_throughput_rps"] == 4200.0
        assert absolute["gateway_p50_latency_ms"] == 105.0
        assert absolute["gateway_p99_latency_ms"] == 115.0

    def test_gateway_latency_rise_fails_only_with_absolute(self):
        baseline = {
            "gateway_vs_inprocess": 0.6,
            "gateway": {"rejection_rate": 0.0,
                        "p99_latency_ms": 100.0},
        }
        fresh = {
            "gateway_vs_inprocess": 0.6,
            "gateway": {"rejection_rate": 0.0,
                        "p99_latency_ms": 150.0},  # +50% latency
        }
        _, failures = compare_bench.compare(baseline, fresh)
        assert failures == []
        _, failures = compare_bench.compare(baseline, fresh,
                                            absolute=True)
        assert len(failures) == 1
        assert "gateway_p99_latency_ms" in failures[0]
        assert "rose" in failures[0]

    def test_gateway_latency_drop_passes(self):
        baseline = {"gateway_vs_inprocess": 0.6,
                    "gateway": {"rejection_rate": 0.0,
                                "p99_latency_ms": 100.0}}
        fresh = {"gateway_vs_inprocess": 0.6,
                 "gateway": {"rejection_rate": 0.0,
                             "p99_latency_ms": 40.0}}
        _, failures = compare_bench.compare(baseline, fresh,
                                            absolute=True)
        assert failures == []

    def test_chaos_schema(self):
        report = {"survival": {"survival_rate": 0.98, "crashes": 0},
                  "injected_faults": 20}
        assert compare_bench.extract_metrics(report) == {
            "chaos_survival_rate": 0.98}

    def test_chaos_survival_regression_fails(self):
        baseline = {"survival": {"survival_rate": 1.0}}
        fresh = {"survival": {"survival_rate": 0.5}}
        _, failures = compare_bench.compare(baseline, fresh)
        assert len(failures) == 1
        assert "chaos_survival_rate" in failures[0]

    def test_unknown_schema_is_empty(self):
        assert compare_bench.extract_metrics({"something": 1}) == {}


class TestCompare:
    def test_small_drop_passes(self):
        fresh = dict(ESTIMATOR_BASELINE, batch_speedup=5.5)
        lines, failures = compare_bench.compare(ESTIMATOR_BASELINE, fresh)
        assert failures == []
        assert any("ok" in line for line in lines)

    def test_large_drop_fails(self):
        fresh = dict(ESTIMATOR_BASELINE, batch_speedup=4.0)  # -33%
        _, failures = compare_bench.compare(ESTIMATOR_BASELINE, fresh)
        assert len(failures) == 1
        assert "batch_speedup" in failures[0]
        assert "33.3%" in failures[0]

    def test_improvement_passes(self):
        fresh = dict(ESTIMATOR_BASELINE, batch_speedup=9.0)
        _, failures = compare_bench.compare(ESTIMATOR_BASELINE, fresh)
        assert failures == []

    def test_gate_threshold_is_configurable(self):
        fresh = dict(ESTIMATOR_BASELINE, batch_speedup=5.5)  # -8.3%
        _, failures = compare_bench.compare(ESTIMATOR_BASELINE, fresh,
                                            max_regression=0.05)
        assert failures

    def test_missing_fresh_metric_fails(self):
        _, failures = compare_bench.compare(ESTIMATOR_BASELINE,
                                            {"something": 1})
        assert any("missing" in f for f in failures)

    def test_empty_baseline_fails(self):
        _, failures = compare_bench.compare({"something": 1},
                                            ESTIMATOR_BASELINE)
        assert failures == ["baseline report carries no tracked metrics"]

    def test_non_positive_baseline_skipped(self):
        baseline = {"batch_speedup": 0.0}
        lines, failures = compare_bench.compare(
            baseline, {"batch_speedup": 1.0})
        assert failures == []
        assert any("skip" in line for line in lines)


class TestMain:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", ESTIMATOR_BASELINE)
        fresh = self._write(tmp_path, "fresh.json",
                            dict(ESTIMATOR_BASELINE, batch_speedup=5.8))
        assert compare_bench.main(["--baseline", baseline,
                                   "--fresh", fresh]) == 0
        out = capsys.readouterr().out
        assert "perf gate passed" in out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", ESTIMATOR_BASELINE)
        fresh = self._write(tmp_path, "fresh.json",
                            dict(ESTIMATOR_BASELINE, batch_speedup=3.0))
        assert compare_bench.main(["--baseline", baseline,
                                   "--fresh", fresh]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "FAIL" in captured.out

    def test_absolute_flag_gates_throughput(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", SERVE_BASELINE)
        slow = {
            "speedup_vs_serial": 2.0,  # ratio unchanged
            "service": {"throughput_rps": 1000.0},  # -75% absolute
            "serial_baseline": {"throughput_rps": 500.0},
        }
        fresh = self._write(tmp_path, "fresh.json", slow)
        assert compare_bench.main(["--baseline", baseline,
                                   "--fresh", fresh]) == 0
        assert compare_bench.main(["--baseline", baseline,
                                   "--fresh", fresh, "--absolute"]) == 1
        capsys.readouterr()

    def test_rejects_bad_threshold(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", ESTIMATOR_BASELINE)
        with pytest.raises(SystemExit):
            compare_bench.main(["--baseline", baseline,
                                "--fresh", baseline,
                                "--max-regression", "1.5"])

    def test_gates_committed_baselines(self, capsys):
        """The committed BENCH_*.json files pass against themselves."""
        results = _SCRIPT.parent / "results"
        for name in ("BENCH_estimator.json", "BENCH_serve.json",
                     "BENCH_cache.json", "BENCH_chaos.json",
                     "BENCH_reader.json", "BENCH_gateway.json"):
            path = results / name
            assert compare_bench.main(["--baseline", str(path),
                                       "--fresh", str(path)]) == 0
        capsys.readouterr()
