"""Documentation health: the docs must track the code.

These tests keep README/DESIGN/EXPERIMENTS honest: referenced files
exist, the quickstart snippet uses real API names, the DESIGN
experiment index points at bench files that are actually there, and
every public module carries a docstring.
"""

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestDocFilesExist:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "REPORT.md",
        "docs/ALGORITHM.md",
    ])
    def test_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 500


class TestDesignIndex:
    def test_bench_targets_exist(self):
        """Every benchmarks/... path named in DESIGN.md must exist."""
        text = (ROOT / "DESIGN.md").read_text()
        targets = set(re.findall(r"`(benchmarks/[\w./]+\.py)`", text))
        assert targets, "DESIGN.md names no bench targets?"
        for target in targets:
            assert (ROOT / target).exists(), f"{target} referenced but missing"

    def test_module_references_exist(self):
        """Every src path mentioned in DESIGN.md exists."""
        text = (ROOT / "DESIGN.md").read_text()
        modules = set(re.findall(r"`(src/repro/[\w/]+/?)`", text))
        for module in modules:
            assert (ROOT / module).exists(), f"{module} missing"


class TestReadme:
    def test_quickstart_names_exist(self):
        import repro
        text = (ROOT / "README.md").read_text()
        snippet = re.search(r"```python\n(.*?)```", text, re.S).group(1)
        for name in re.findall(r"from repro import (.+)", snippet):
            for symbol in name.split(","):
                assert hasattr(repro, symbol.strip())

    def test_examples_listed_exist(self):
        text = (ROOT / "README.md").read_text()
        for example in re.findall(r"python (examples/[\w.]+\.py)", text):
            assert (ROOT / example).exists(), f"{example} missing"

    def test_mentions_paper(self):
        text = (ROOT / "README.md").read_text()
        assert "WiForce" in text
        assert "NSDI" in text


class TestModuleDocstrings:
    def test_every_module_documented(self):
        import repro
        missing = []
        for info in pkgutil.walk_packages(repro.__path__,
                                          prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ and len(module.__doc__.strip()) > 20):
                missing.append(info.name)
        assert not missing, f"undocumented modules: {missing}"

    def test_every_package_documented(self):
        import repro
        assert repro.__doc__ and "WiForce" in repro.__doc__


class TestExperimentsDoc:
    def test_every_paper_artifact_covered(self):
        """EXPERIMENTS.md must carry a row for every evaluated artefact."""
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artefact in ("Fig. 4", "Fig. 5", "Figs. 7", "Fig. 10",
                         "Table 1", "Fig. 13", "Fig. 14", "Fig. 16",
                         "Fig. 17", "Fig. 18", "Fig. 19"):
            assert artefact in text, f"{artefact} missing from EXPERIMENTS.md"

    def test_deviations_documented(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "Known deviations" in text
