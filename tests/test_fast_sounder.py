"""Parity suite for the batched fast sounder (repro.reader.batch).

Three tiers of agreement with the frame-level oracle, matching the
contract in DESIGN.md "Batched sounder":

* ``FastSounder.capture`` — bit-identical for every configuration,
  including armed fault plans (the RNG stream and operation order are
  preserved).
* ``FastSounder.capture_batch`` — bit-identical when the sounder
  consumes no randomness; bounded-delta otherwise (fused draws).
* ``FastSounder.capture_matrices`` — statistically exact; noiseless
  runs agree to rounding, noisy runs differ by two independent noise
  draws of the same distribution.
"""

import importlib

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel, Path
from repro.channel.propagation import BackscatterLink
from repro.core.harmonics import (
    HarmonicExtractor,
    integer_period_group_length,
)
from repro.core.pipeline import WiForceReader
from repro.errors import ConfigurationError, ReaderError
from repro.experiments.scenarios import calibrated_model
from repro.faults.inject import inject
from repro.faults.plan import FaultPlan, FaultSpec
from repro.reader import _kernels
from repro.reader.batch import FastSounder, resolve_sounder
from repro.reader.fmcw import FMCWSounder, FMCWSounderConfig
from repro.reader.frontend import SDRFrontEnd
from repro.reader.ofdm import OFDMModem
from repro.reader.sounder import FrameLevelSounder
from repro.reader.uwb import UWBSounder, UWBSounderConfig
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.tag import TagState, WiForceTag

PRESS = TagState(force=2.0, location=0.04)


@pytest.fixture(scope="module")
def config():
    return OFDMSounderConfig(carrier_frequency=900e6)


@pytest.fixture(scope="module")
def clutter():
    return MultipathChannel([Path(2e-3, 8e-9), Path(1e-3j, 15e-9)])


@pytest.fixture(scope="module")
def extractor(config):
    length = integer_period_group_length(config.frame_period, 1000.0)
    return HarmonicExtractor(tones=(1000.0, 4000.0), group_length=length)


def _pair(cls_args, seed=7, quiet=False, **kwargs):
    """Build (oracle, fast) sounders with identical RNG streams."""
    config, transducer, clutter = cls_args
    if quiet:
        # Exactly zero noise (not merely tiny): the batch bit-identity
        # contract only holds when the sounder consumes no randomness,
        # and a sub-ulp quantization floor still flips bits where the
        # static field fades.
        kwargs.setdefault("front_end",
                          SDRFrontEnd(dynamic_range_db=float("inf")))
        kwargs.setdefault("noise_figure_db", float("-inf"))
        kwargs.setdefault("tag_phase_jitter_deg_per_sqrt_s", 0.0)
    sounders = []
    for cls in (FrameLevelSounder, FastSounder):
        tag = WiForceTag(transducer, clock_offset_ppm=20.0)
        sounders.append(cls(config, tag, BackscatterLink(), clutter,
                            rng=np.random.default_rng(seed), **kwargs))
    return sounders


@pytest.fixture()
def builder(config, transducer, clutter):
    return (config, transducer, clutter)


class TestSingleCaptureBitParity:
    def test_noisy_jittery_captures_bit_identical(self, builder):
        oracle, fast = _pair(builder)
        for start in (0.0, 0.25, 1.5):
            ref = oracle.capture(PRESS, 1250, start_time=start)
            got = fast.capture(PRESS, 1250, start_time=start)
            assert np.array_equal(ref.estimates, got.estimates)
            assert np.array_equal(ref.times, got.times)
            assert ref.frame_period == got.frame_period

    def test_consecutive_captures_share_jitter_walk(self, builder):
        # The jitter phase is stateful; streams must stay aligned
        # across captures, not just within one.
        oracle, fast = _pair(builder, seed=3)
        clock = 0.0
        for state in (TagState(), PRESS, TagState()):
            ref = oracle.capture(state, 625, start_time=clock)
            got = fast.capture(state, 625, start_time=clock)
            clock += 625 * oracle.config.frame_period
            assert np.array_equal(ref.estimates, got.estimates)

    @pytest.mark.parametrize("site,kind,magnitude", [
        ("sensor.clock", "drift", 3.0),
        ("sensor.clock", "duty_jitter", 0.4),
        ("channel.snr", "collapse", 12.0),
        ("channel.snr", "interference", 5.0),
    ])
    def test_armed_fault_plans_bit_identical(self, builder, site, kind,
                                             magnitude):
        plan = FaultPlan(specs=(FaultSpec(site=site, kind=kind,
                                          probability=1.0,
                                          magnitude=magnitude),),
                         seed=42, name=f"parity-{kind}")
        oracle, fast = _pair(builder)
        with inject(plan):
            ref = [oracle.capture(PRESS, 625, start_time=i * 0.036)
                   for i in range(3)]
        with inject(plan):
            got = [fast.capture(PRESS, 625, start_time=i * 0.036)
                   for i in range(3)]
        for r, g in zip(ref, got):
            assert np.array_equal(r.estimates, g.estimates)

    def test_combined_fault_plan_bit_identical(self, builder):
        specs = tuple(
            FaultSpec(site=site, kind=kind, probability=0.7, magnitude=mag)
            for site, kind, mag in (
                ("sensor.clock", "drift", 3.0),
                ("sensor.clock", "duty_jitter", 0.4),
                ("channel.snr", "collapse", 12.0),
                ("channel.snr", "interference", 5.0),
            ))
        plan = FaultPlan(specs=specs, seed=9, name="combo")
        oracle, fast = _pair(builder)
        with inject(plan):
            ref = [oracle.capture(PRESS, 625, start_time=i * 0.036)
                   for i in range(6)]
        with inject(plan):
            got = [fast.capture(PRESS, 625, start_time=i * 0.036)
                   for i in range(6)]
        for r, g in zip(ref, got):
            assert np.array_equal(r.estimates, g.estimates)


class TestCaptureBatch:
    def test_noiseless_batch_bit_identical_to_sequential(self, builder):
        oracle, fast = _pair(builder, quiet=True)
        states = [TagState(), PRESS, TagState(force=1.0, location=0.06),
                  TagState()]
        streams = fast.capture_batch(states, 625)
        clock = 0.0
        for state, stream in zip(states, streams):
            ref = oracle.capture(state, 625, start_time=clock)
            clock += 625 * oracle.config.frame_period
            assert np.array_equal(ref.estimates, stream.estimates)
            assert np.array_equal(ref.times, stream.times)

    def test_variable_frame_counts(self, builder):
        oracle, fast = _pair(builder, quiet=True)
        states = [PRESS, TagState()]
        streams = fast.capture_batch(states, [625, 1250])
        clock = 0.0
        for state, frames, stream in zip(states, (625, 1250), streams):
            ref = oracle.capture(state, frames, start_time=clock)
            clock += frames * oracle.config.frame_period
            assert np.array_equal(ref.estimates, stream.estimates)

    def test_noisy_batch_matches_in_distribution(self, builder):
        # Fused RNG reorders the noise draws: same noise power, not the
        # same bits.  Check the residual statistics agree.
        oracle, fast = _pair(builder, seed=5)
        states = [TagState()] * 4
        streams = fast.capture_batch(states, 625)
        clock = 0.0
        refs = []
        for state in states:
            refs.append(oracle.capture(state, 625, start_time=clock))
            clock += 625 * oracle.config.frame_period
        noise_std = oracle.effective_noise_std()
        for ref, got in zip(refs, streams):
            assert np.array_equal(ref.times, got.times)
            delta = got.estimates - ref.estimates
            # Difference of two independent complex AWGN draws (plus a
            # bounded jitter-phase contribution).
            assert np.sqrt(np.mean(np.abs(delta) ** 2)) < 3.0 * noise_std

    def test_rejects_empty_and_mismatched_inputs(self, builder):
        _, fast = _pair(builder, quiet=True)
        with pytest.raises(ConfigurationError):
            fast.capture_batch([], 625)
        with pytest.raises(ConfigurationError):
            fast.capture_batch([PRESS], [625, 625])
        with pytest.raises(ConfigurationError):
            fast.capture_batch([PRESS], 0)

    def test_armed_plan_fires_per_capture_in_order(self, builder):
        # Sounder-level fault sites must see the same visit sequence a
        # sequential oracle run would: the deterministic fault draws
        # (site counters + event RNGs) shape the signal identically;
        # only the fused AWGN bits differ.
        plan = FaultPlan(specs=(
            FaultSpec(site="sensor.clock", kind="drift",
                      probability=0.7, magnitude=4.0),
            FaultSpec(site="channel.snr", kind="interference",
                      probability=0.7, magnitude=6.0),
        ), seed=13, name="batch-order")
        oracle, fast = _pair(builder, quiet=True)
        states = [PRESS, TagState(), PRESS]
        with inject(plan) as injector:
            streams = fast.capture_batch(states, 625)
            fast_counts = {site: injector.counter(site)
                           for site in ("sensor.clock", "channel.snr")}
        clock = 0.0
        with inject(plan) as injector:
            refs = []
            for state in states:
                refs.append(oracle.capture(state, 625, start_time=clock))
                clock += 625 * oracle.config.frame_period
            oracle_counts = {site: injector.counter(site)
                             for site in ("sensor.clock", "channel.snr")}
        assert fast_counts == oracle_counts
        for ref, got in zip(refs, streams):
            assert np.array_equal(ref.estimates, got.estimates)


class TestHarmonicFastPath:
    def test_supports_default_extractor(self, builder, extractor):
        _, fast = _pair(builder)
        assert fast.supports_matrices(extractor)

    def test_rejects_hann_window(self, builder, extractor):
        _, fast = _pair(builder)
        hann = HarmonicExtractor(tones=extractor.tones,
                                 group_length=extractor.group_length,
                                 window="hann")
        assert not fast.supports_matrices(hann)
        with pytest.raises(ReaderError):
            fast.capture_matrices(PRESS, 2, hann)

    def test_rejects_non_integer_period_tones(self, builder, extractor):
        _, fast = _pair(builder)
        odd = HarmonicExtractor(tones=(997.0, 4000.0),
                                group_length=extractor.group_length)
        assert not fast.supports_matrices(odd)

    def test_noiseless_matrices_match_oracle_extract(self, builder,
                                                     extractor):
        oracle, fast = _pair(builder, quiet=True)
        groups = 6
        ref = extractor.extract(oracle.capture(
            PRESS, groups * extractor.group_length, start_time=0.5))
        got = fast.capture_matrices(PRESS, groups, extractor,
                                    start_time=0.5)
        for tone in extractor.tones:
            assert np.array_equal(ref[tone].group_times,
                                  got[tone].group_times)
            scale = np.abs(ref[tone].values).mean()
            delta = np.abs(ref[tone].values - got[tone].values).max()
            assert delta < 1e-9 * scale

    def test_noisy_matrices_statistically_exact(self, builder, extractor):
        # The group-level noise draw is distributionally identical to
        # extracting a per-frame AWGN stream: the difference between
        # the two paths is two independent draws of the same
        # (sigma^2 * v)-variance complex Gaussian per group entry.
        oracle, fast = _pair(builder, seed=11)
        groups = 8
        ref = extractor.extract(oracle.capture(
            PRESS, groups * extractor.group_length, start_time=0.0))
        got = fast.capture_matrices(PRESS, groups, extractor,
                                    start_time=0.0)
        sigma = oracle.effective_noise_std()
        variance_factor = 1.0 / extractor.group_length  # rect window
        group_noise = sigma * np.sqrt(variance_factor)
        for tone in extractor.tones:
            delta = np.abs(ref[tone].values - got[tone].values)
            # Difference of two independent draws: std sqrt(2) times
            # the group noise; 6 sigma over ~512 Rayleigh samples plus
            # the (smaller) independent jitter-walk contribution.
            assert delta.max() < 8.0 * np.sqrt(2.0) * group_noise
            assert np.sqrt(np.mean(delta ** 2)) < 3.0 * np.sqrt(
                2.0) * group_noise

    def test_reader_uses_fast_path_and_matches_statistically(
            self, builder, extractor):
        model = calibrated_model(900e6, fast=True)
        oracle, fast = _pair(builder, seed=21)
        reader_oracle = WiForceReader(oracle, model)
        reader_fast = WiForceReader(fast, model)
        assert reader_fast._use_fast_path()
        reading_ref = reader_oracle.read(PRESS, rebaseline=True)
        reading_fast = reader_fast.read(PRESS, rebaseline=True)
        tolerance = 6.0 * max(reader_oracle.measured_phase_std(),
                              reader_fast.measured_phase_std())
        assert reading_fast.phi1 == pytest.approx(reading_ref.phi1,
                                                  abs=tolerance)
        assert reading_fast.phi2 == pytest.approx(reading_ref.phi2,
                                                  abs=tolerance)

    def test_reader_falls_back_to_stream_path_under_faults(self, builder):
        # Armed plans disable the harmonic shortcut entirely, so the
        # fast reader is bit-identical to the oracle reader: every
        # fault site sees the same visit sequence and every sounder
        # draw matches.
        model = calibrated_model(900e6, fast=True)
        plan = FaultPlan(specs=(
            FaultSpec(site="reader.capture", kind="dropout",
                      probability=0.5, magnitude=0.2),
            FaultSpec(site="reader.capture", kind="desync",
                      probability=0.3, magnitude=1.5),
            FaultSpec(site="reader.capture", kind="phase_jump",
                      probability=0.3, magnitude=0.8),
            FaultSpec(site="sensor.clock", kind="duty_jitter",
                      probability=0.5, magnitude=0.3),
            FaultSpec(site="channel.snr", kind="interference",
                      probability=0.5, magnitude=4.0),
        ), seed=31, name="reader-parity")
        oracle, fast = _pair(builder, seed=17)
        reader_oracle = WiForceReader(oracle, model)
        reader_fast = WiForceReader(fast, model)

        def protocol(reader):
            # A heavy plan can degrade a read past recovery (e.g. a
            # dropout burst erasing the tag signal); parity then means
            # both readers fail identically, not that both succeed.
            outcomes = []
            for _ in range(3):
                try:
                    reading = reader.read(PRESS, rebaseline=True)
                    outcomes.append(("ok", reading.phi1, reading.phi2,
                                     reading.force, reading.location))
                except Exception as exc:  # noqa: BLE001 - parity check
                    outcomes.append(("error", type(exc).__name__, str(exc)))
            return outcomes

        with inject(plan):
            assert not reader_fast._use_fast_path()
            ref = protocol(reader_oracle)
        with inject(plan):
            got = protocol(reader_fast)
        assert ref == got


class TestWaveformAdapters:
    def test_fmcw_gather_matches_per_sweep_reference(self, transducer):
        # The vectorized sweep gather must reproduce the per-sweep
        # diagonal of the full reflection block bit for bit.
        config = FMCWSounderConfig()
        tag = WiForceTag(transducer, clock_offset_ppm=20.0)
        sounder = FMCWSounder(config, tag, BackscatterLink(),
                              rng=np.random.default_rng(0))
        stream = sounder.capture(PRESS, 16, start_time=0.25)
        frequencies = config.step_frequencies()
        step_offsets = (np.arange(config.steps) + 0.5) * config.step_dwell
        noise = stream.estimates - (
            sounder._static[None, :] + sounder._tag_gain[None, :] * 0.0)
        for index in range(16):
            sample_times = stream.times[index] + step_offsets
            gamma = tag.reflection_series(frequencies, sample_times, PRESS)
            expected = (sounder._static
                        + sounder._tag_gain * np.diagonal(gamma))
            residual = stream.estimates[index] - expected
            # Residual is exactly the AWGN term: bounded by a few
            # noise sigmas, far below the gather mismatch that a
            # wrong diagonal would produce (signal-scale).
            assert np.abs(residual).max() < 10.0 * sounder.estimate_noise_std()
        assert noise.shape == stream.estimates.shape

    def test_fmcw_noiseless_bit_exact_reference(self, transducer):
        config = FMCWSounderConfig(tx_power_dbm=60.0)  # noise negligible
        tag = WiForceTag(transducer, clock_offset_ppm=20.0)
        sounder = FMCWSounder(config, tag, BackscatterLink(),
                              rng=np.random.default_rng(0))
        stream = sounder.capture(PRESS, 8)
        frequencies = config.step_frequencies()
        step_offsets = (np.arange(config.steps) + 0.5) * config.step_dwell
        for index in range(8):
            sample_times = stream.times[index] + step_offsets
            gamma = tag.reflection_series(frequencies, sample_times, PRESS)
            expected = (sounder._static
                        + sounder._tag_gain * np.diagonal(gamma))
            np.testing.assert_allclose(stream.estimates[index], expected,
                                       rtol=1e-6)

    def test_uwb_capture_matches_reflection_series(self, transducer):
        config = UWBSounderConfig(bins=64)
        tag = WiForceTag(transducer, clock_offset_ppm=20.0)
        sounder = UWBSounder(config, tag, BackscatterLink(),
                             rng=np.random.default_rng(0))
        stream = sounder.capture(PRESS, 40, start_time=0.1)
        frequencies = config.bin_frequencies()
        midpoints = stream.times + 0.5 * config.estimate_period
        gamma = tag.reflection_series(frequencies, midpoints, PRESS)
        expected = (sounder._static[None, :]
                    + sounder._tag_gain[None, :] * gamma)
        residual = stream.estimates - expected
        assert np.abs(residual).max() < 10.0 * sounder.estimate_noise_std()


class TestBatchedTagAPI:
    def test_state_table_rows_match_state_reflections(self, transducer,
                                                      config):
        tag = WiForceTag(transducer)
        frequencies = config.subcarrier_frequencies()
        table = tag.state_table(frequencies, PRESS)
        reflections = tag.state_reflections(frequencies, PRESS)
        np.testing.assert_array_equal(table[0], reflections[(False, False)])
        np.testing.assert_array_equal(table[1], reflections[(False, True)])
        np.testing.assert_array_equal(table[2], reflections[(True, False)])
        np.testing.assert_array_equal(table[3], reflections[(True, True)])

    def test_reflection_table_stacks_states(self, transducer, config):
        tag = WiForceTag(transducer)
        frequencies = config.subcarrier_frequencies()
        states = [TagState(), PRESS]
        stacked = tag.reflection_table(frequencies, states)
        assert stacked.shape == (2, 4, frequencies.size)
        for index, state in enumerate(states):
            np.testing.assert_array_equal(
                stacked[index], tag.state_table(frequencies, state))

    def test_state_indices_match_reflection_series_gather(self, transducer,
                                                          config):
        tag = WiForceTag(transducer, clock_offset_ppm=50.0)
        frequencies = config.subcarrier_frequencies()
        times = np.linspace(0.0, 0.01, 173)
        series = tag.reflection_series(frequencies, times, PRESS)
        table = tag.state_table(frequencies, PRESS)
        indices = tag.state_indices(times)
        np.testing.assert_array_equal(series, table[indices])


class TestOFDMSoundMany:
    def test_batched_estimates_match_single_statistically(self, config):
        modem = OFDMModem(config, rng=np.random.default_rng(2))
        channel = 1e-2 * np.exp(1j * np.linspace(0.0, 2.0,
                                                 config.subcarriers))
        frames = 64
        batched = modem.sound_many(np.tile(channel, (frames, 1)))
        assert batched.shape == (frames, config.subcarriers)
        residual = batched - channel[None, :]
        measured = np.sqrt(np.mean(np.abs(residual) ** 2))
        assert measured == pytest.approx(modem.estimate_noise_std(),
                                         rel=0.15)

    def test_rejects_wrong_shape(self, config):
        modem = OFDMModem(config, rng=np.random.default_rng(2))
        with pytest.raises(ReaderError):
            modem.sound_many(np.zeros((4, 10), dtype=complex))


class TestKernelsAndSwitches:
    def test_accumulate_matches_numpy_reference(self):
        rng = np.random.default_rng(0)
        bins = rng.integers(0, 32, 5000)
        weights = rng.normal(size=5000) + 1j * rng.normal(size=5000)
        got = _kernels.accumulate_harmonics(bins, weights, 32)
        ref = _kernels._accumulate_numpy(bins, weights, 32)
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_numba_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMBA", "0")
        module = importlib.reload(_kernels)
        try:
            assert module.HAVE_NUMBA is False
            bins = np.array([0, 1, 1, 3])
            weights = np.array([1.0, 2.0, 3.0, 4.0j])
            out = module.accumulate_harmonics(bins, weights, 4)
            np.testing.assert_allclose(out,
                                       [1.0, 5.0, 0.0, 4.0j])
        finally:
            monkeypatch.delenv("REPRO_NUMBA")
            importlib.reload(_kernels)

    def test_resolve_sounder(self):
        assert resolve_sounder("fast") is FastSounder
        assert resolve_sounder("oracle") is FrameLevelSounder
        with pytest.raises(ConfigurationError):
            resolve_sounder("warp")

    def test_builders_honor_oracle_switch(self):
        from repro.experiments.scenarios import build_wireless_scenario
        reader = build_wireless_scenario(seed=1, fast=True,
                                         sounder="oracle")
        assert type(reader.sounder) is FrameLevelSounder
        reader = build_wireless_scenario(seed=1, fast=True)
        assert type(reader.sounder) is FastSounder
