"""Integration tests: every paper claim's *shape*, in fast mode.

One test per evaluation artefact (DESIGN.md index).  These run the same
runners the benchmarks print, with reduced sample counts.
"""

import numpy as np
import pytest

from repro import TagState, build_default_system
from repro.experiments import runners


@pytest.mark.integration
class TestFig04Transduction:
    def test_soft_beam_enables_transduction(self):
        result = runners.run_fig04(fast=True)
        assert result.soft_swing_deg > 15.0
        assert result.thin_swing_deg < 0.3 * result.soft_swing_deg


@pytest.mark.integration
class TestFig05BeamProfiles:
    @pytest.fixture(scope="class")
    def result(self):
        return runners.run_fig05(fast=True)

    def test_centre_press_symmetric(self, result):
        centre = list(result.locations).index(0.040)
        np.testing.assert_allclose(result.port1_deg[centre],
                                   result.port2_deg[centre], atol=4.0)

    def test_off_centre_asymmetric(self, result):
        """Pressing at 20 mm: the near port swings more than the far."""
        index = list(result.locations).index(0.020)
        assert (result.swing_deg(index, 1)
                > 1.2 * result.swing_deg(index, 2))

    def test_mirror_symmetry(self, result):
        left = list(result.locations).index(0.020)
        right = list(result.locations).index(0.060)
        assert result.swing_deg(left, 1) == pytest.approx(
            result.swing_deg(right, 2), abs=3.0)

    def test_profiles_monotonic_overall(self, result):
        """More force always means more shorting-point travel; the
        phase profiles trend rather than oscillate."""
        for i in range(len(result.locations)):
            profile = result.port1_deg[i]
            total = abs(profile[-1] - profile[0])
            assert total > 10.0


@pytest.mark.integration
class TestFig07Intermodulation:
    def test_duty_cycling_removes_intermodulation(self):
        result = runners.run_fig07(fast=True)
        assert result.overlap_wiforce == 0.0
        assert result.overlap_naive > 0.2
        assert result.wiforce_worst_error_deg < 2.0
        assert result.naive_worst_error_deg > 20.0


@pytest.mark.integration
class TestFig10SensorRF:
    def test_broadband_matching(self):
        result = runners.run_fig10()
        assert result.worst_s11_db < -10.0      # the paper's spec
        assert result.worst_s21_db > -1.0       # thru ~ 0 dB
        assert result.s21_phase_residual_deg < 1.0  # linear phase


@pytest.mark.integration
class TestTable1:
    def test_wireless_tracks_model(self):
        result = runners.run_table1(fast=True, force_points=5)
        assert result.wireless_model_rmse_deg() < 3.0

    def test_vna_and_wireless_agree_roughly(self):
        result = runners.run_table1(fast=True, force_points=5)
        delta = np.abs(result.vna_port1_deg - result.wireless_port1_deg)
        delta = np.minimum(delta, 360.0 - delta)
        assert np.median(delta) < 15.0


@pytest.mark.integration
class TestFig13Fig14Accuracy:
    @pytest.fixture(scope="class")
    def result_900(self):
        return runners.run_wireless_accuracy(900e6, fast=True,
                                             force_points=5, repeats=2,
                                             seed=5)

    @pytest.fixture(scope="class")
    def result_2g4(self):
        return runners.run_wireless_accuracy(2.4e9, fast=True,
                                             force_points=5, repeats=2,
                                             seed=5)

    def test_force_accuracy_band(self, result_900):
        """Median force error well under 1 N (paper: 0.56 N)."""
        assert result_900.median_force_error < 0.7

    def test_location_accuracy_band(self, result_900):
        """Median location error in the sub-mm class (paper: 0.86 mm)."""
        assert result_900.median_location_error < 1.5e-3

    def test_higher_carrier_not_worse(self, result_900, result_2g4):
        """Paper: 2.4 GHz beats 900 MHz thanks to more phase per mm."""
        assert (result_2g4.median_location_error
                < 1.5 * result_900.median_location_error)

    def test_uniform_across_length(self, result_900):
        """Per-location medians stay within a small factor of the
        pooled median (the paper's Fig. 13 observation)."""
        pooled = result_900.median_location_error
        for _, (_, location_errors) in result_900.per_location.items():
            assert np.median(np.abs(location_errors)) < 6.0 * pooled + 1e-4


@pytest.mark.integration
class TestFig16Tissue:
    def test_tissue_scenario(self):
        result = runners.run_tissue(fast=True, force_points=4, repeats=1)
        assert result.saturated_without_plate
        assert result.median_force_error < 1.0


@pytest.mark.integration
class TestFig17Fingertip:
    def test_fingertip_interaction(self):
        result = runners.run_fingertip(fast=True)
        # Location: everything within a fingertip's width of 60 mm.
        assert np.all(np.abs(result.location_estimates
                             - result.target_location) < 5e-3)
        assert result.levels_monotonic
        relative = result.level_estimates / result.level_targets
        assert np.all(relative > 0.6)
        assert np.all(relative < 1.4)


@pytest.mark.integration
class TestFig18Distance:
    def test_stability_bands(self):
        result = runners.run_distance(fast=True)
        assert result.best_stability_deg < 1.5
        assert result.worst_stability_deg < 5.0
        # Extreme range degrades the phase stability.
        assert (result.separation_stability_deg[-1]
                > result.separation_stability_deg[0])


@pytest.mark.integration
class TestFig19Impedance:
    def test_ratio_shift(self):
        result = runners.run_impedance_ratio()
        assert result.optimal_ratio_narrow == pytest.approx(5.0, abs=0.4)
        assert result.optimal_ratio_wide == pytest.approx(4.0, abs=0.4)

    def test_insertion_loss_best_near_matched_ratio(self):
        result = runners.run_impedance_ratio()
        best_narrow = result.ratios[
            int(np.argmax(result.insertion_loss_narrow_db))]
        assert best_narrow == pytest.approx(result.optimal_ratio_narrow,
                                            abs=0.8)


@pytest.mark.integration
class TestPowerAndBaselines:
    def test_power_comparison(self):
        result = runners.run_power_comparison()
        assert result.wiforce.total_uw < 1.0
        assert result.ratio > 10.0

    def test_baseline_comparison(self):
        result = runners.run_baseline_comparison(fast=True)
        # Paper: ~5x better localization than RFID-class systems; the
        # simulated gap is even wider.
        assert result.location_advantage > 5.0
        assert result.multipath_degradation > 3.0


@pytest.mark.integration
class TestAblations:
    def test_subcarrier_averaging_gain(self):
        result = runners.run_averaging_ablation(fast=True, captures=16)
        assert result.improvement > 2.0

    def test_reflective_switch_requirement(self):
        result = runners.run_switch_ablation(fast=True)
        assert result.reference_loss_db > 10.0


@pytest.mark.integration
class TestDefaultSystem:
    def test_build_and_read(self):
        from repro.experiments.scenarios import fast_transducer
        system = build_default_system(carrier_frequency=900e6, seed=2,
                                      transducer=fast_transducer())
        system.reader.capture_baseline()
        reading = system.reader.read(TagState(force=3.0, location=0.045))
        assert reading.force == pytest.approx(3.0, abs=0.6)
        assert reading.location == pytest.approx(0.045, abs=1.5e-3)


@pytest.mark.integration
class TestFMCWEndToEnd:
    def test_waveform_agnostic_claim(self):
        """Section 3.3: the algorithm works on FMCW sweeps too."""
        from repro.core.harmonics import (HarmonicExtractor,
                                          integer_period_group_length)
        from repro.core.phase import differential_phase
        from repro.channel.propagation import BackscatterLink
        from repro.core.calibration import harmonic_differential_phases
        from repro.experiments.scenarios import fast_transducer
        from repro.reader.fmcw import FMCWSounder, FMCWSounderConfig
        from repro.sensor.tag import WiForceTag

        transducer = fast_transducer()
        tag = WiForceTag(transducer)
        config = FMCWSounderConfig(carrier_frequency=900e6)
        sounder = FMCWSounder(config, tag, BackscatterLink(),
                              rng=np.random.default_rng(4))
        group = integer_period_group_length(config.sweep_period, 1e3)
        extractor = HarmonicExtractor(tones=(1e3, 4e3), group_length=group)

        base_stream = sounder.capture(TagState(), 2 * group)
        touch_stream = sounder.capture(TagState(4.0, 0.040), 2 * group,
                                       start_time=base_stream.duration)
        base = extractor.extract(base_stream)
        touch = extractor.extract(touch_stream)
        phi1 = differential_phase(base[1e3].values.mean(axis=0),
                                  touch[1e3].values.mean(axis=0))
        expected = harmonic_differential_phases(tag, 900e6, 4.0, 0.040)[0]
        assert phi1 == pytest.approx(expected, abs=np.radians(4.0))
