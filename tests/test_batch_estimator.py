"""Batched inversion and parallel campaign execution.

The contract under test: ``invert_batch`` is the scalar ``invert``
vectorized — element-wise identical results, including touch gating,
hints and tie-breaking — and ``CampaignExecutor`` only changes
wall-clock time, never values.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimator import (
    BatchForceLocationEstimate,
    ForceLocationEstimator,
)
from repro.errors import (
    CampaignTrialError,
    ConfigurationError,
    EstimationError,
)
from repro.experiments.parallel import (
    WORKERS_ENV,
    CampaignExecutor,
    resolve_workers,
)

phase = st.floats(min_value=-np.pi, max_value=np.pi,
                  allow_nan=False, allow_infinity=False)


def _pair_batch(estimator, phi1, phi2, hint=None):
    batch = estimator.invert_batch(np.asarray(phi1), np.asarray(phi2),
                                   location_hint=hint)
    scalar = [estimator.invert(p1, p2, location_hint=hint)
              for p1, p2 in zip(phi1, phi2)]
    return batch, scalar


def _assert_matches(batch, scalar):
    for i, estimate in enumerate(scalar):
        assert batch.force[i] == estimate.force
        assert batch.location[i] == estimate.location
        assert batch.residual[i] == estimate.residual
        assert bool(batch.touched[i]) == estimate.touched


class TestInvertBatch:
    @settings(max_examples=25, deadline=None)
    @given(pairs=st.lists(st.tuples(phase, phase), min_size=1,
                          max_size=6))
    def test_matches_scalar_elementwise(self, model_900, pairs):
        """Property: batch == scalar for arbitrary phase pairs."""
        estimator = ForceLocationEstimator(model_900)
        phi1 = [p for p, _ in pairs]
        phi2 = [p for _, p in pairs]
        batch, scalar = _pair_batch(estimator, phi1, phi2)
        _assert_matches(batch, scalar)

    def test_matches_scalar_on_model_phases(self, model_900):
        """Realistic presses (model-generated phases) round-trip the
        same through both paths, bit for bit."""
        estimator = ForceLocationEstimator(model_900)
        rng = np.random.default_rng(7)
        forces = rng.uniform(0.5, 8.0, 64)
        locations = rng.uniform(model_900.locations[0],
                                model_900.locations[-1], 64)
        phi1, phi2 = model_900.predict_batch(forces, locations)
        phi1 += rng.normal(0.0, np.radians(1.5), 64)
        phi2 += rng.normal(0.0, np.radians(1.5), 64)
        batch, scalar = _pair_batch(estimator, phi1, phi2)
        _assert_matches(batch, scalar)

    def test_matches_scalar_with_hint(self, model_900):
        """The restricted-span (location hint) path agrees too."""
        estimator = ForceLocationEstimator(model_900)
        phi1, phi2 = model_900.predict_batch(np.full(8, 4.0),
                                             np.full(8, 0.045))
        batch, scalar = _pair_batch(estimator, phi1, phi2, hint=0.045)
        _assert_matches(batch, scalar)

    def test_untouched_rows_are_gated(self, model_900):
        """Below-threshold rows come back untouched with zeros."""
        estimator = ForceLocationEstimator(model_900)
        quiet = np.radians(0.5)
        loud1, loud2 = model_900.predict(5.0, 0.040)
        batch = estimator.invert_batch(np.array([quiet, loud1]),
                                       np.array([quiet, loud2]))
        assert not batch.touched[0]
        assert batch.force[0] == 0.0 and batch.location[0] == 0.0
        assert batch.touched[1]

    def test_batch_container_protocol(self, model_900):
        """len / index / iterate views agree with the arrays."""
        estimator = ForceLocationEstimator(model_900)
        phi1, phi2 = model_900.predict_batch(np.array([2.0, 6.0]),
                                             np.array([0.030, 0.050]))
        batch = estimator.invert_batch(phi1, phi2)
        assert isinstance(batch, BatchForceLocationEstimate)
        assert len(batch) == 2
        estimates = list(batch)
        assert estimates[1].force == batch[1].force == batch.force[1]

    def test_rejects_non_1d(self, model_900):
        estimator = ForceLocationEstimator(model_900)
        with pytest.raises(EstimationError):
            estimator.invert_batch(np.zeros((2, 2)), np.zeros((2, 2)))


def _seeded_draw(seed):
    """Cheap deterministic trial used by the executor tests."""
    rng = np.random.default_rng(seed)
    return float(rng.normal()), float(rng.uniform())


def _flaky_trial(seed):
    """Module-level (picklable) trial that fails on one input."""
    if seed == 2:
        raise ValueError(f"synthetic failure for seed {seed}")
    return seed


class TestCampaignExecutor:
    def test_parallel_matches_serial_bit_for_bit(self):
        """4 workers return exactly the serial loop's results."""
        arguments = [(seed,) for seed in range(16)]
        serial = CampaignExecutor(workers=1).run(_seeded_draw, arguments)
        parallel = CampaignExecutor(workers=4).run(_seeded_draw, arguments)
        assert serial.results == parallel.results
        assert serial.mode == "serial"
        assert parallel.workers in (1, 4)  # 1 only if the pool fell back
        if parallel.mode == "serial":
            assert parallel.fallback_reason

    def test_unpicklable_trial_falls_back_to_serial(self):
        executor = CampaignExecutor(workers=2)
        execution = executor.run(lambda seed: seed, [(1,), (2,)])
        assert execution.results == [1, 2]
        assert execution.mode == "serial"
        assert execution.fallback_reason

    def test_summary_mentions_mode_and_trials(self):
        execution = CampaignExecutor(workers=1).run(_seeded_draw,
                                                    [(0,), (1,)])
        summary = execution.summary()
        assert "2 trials" in summary and "serial" in summary

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3
        assert resolve_workers(2) == 2  # explicit argument wins
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_workers()
        monkeypatch.delenv(WORKERS_ENV)
        assert resolve_workers() == 1

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            CampaignExecutor(workers=0)

    def test_workers_env_zero_means_serial(self, monkeypatch):
        """REPRO_WORKERS=0 is the parallelism kill switch, not an
        error: campaigns run on the serial path."""
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers() == 1
        execution = CampaignExecutor().run(_seeded_draw, [(0,), (1,)])
        assert execution.mode == "serial"
        assert execution.workers == 1
        assert execution.results == [_seeded_draw(0), _seeded_draw(1)]
        assert not execution.fallback_reason


class TestCampaignFailurePaths:
    def test_serial_trial_failure_is_named(self):
        with pytest.raises(CampaignTrialError,
                           match=r"trial 2 .*_flaky_trial.*ValueError"):
            CampaignExecutor(workers=1).run(
                _flaky_trial, [(seed,) for seed in range(4)])

    def test_serial_trial_failure_chains_cause(self):
        with pytest.raises(CampaignTrialError) as excinfo:
            CampaignExecutor(workers=1).run(_flaky_trial, [(2,)])
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_parallel_trial_failure_propagates_not_swallowed(self):
        """A raising worker must surface the same clear campaign
        error as the serial loop — never be retried serially and
        never be masked by the infrastructure fallback."""
        executor = CampaignExecutor(workers=2)
        with pytest.raises(CampaignTrialError,
                           match=r"trial 2 .*ValueError: synthetic"):
            executor.run(_flaky_trial, [(seed,) for seed in range(4)])

    def test_parallel_trial_type_error_is_campaign_error(self):
        """Trial-raised TypeErrors are campaign failures, not the
        'unpicklable work' infrastructure signal, so they must not
        trigger the serial fallback."""

        executor = CampaignExecutor(workers=2)
        with pytest.raises(CampaignTrialError, match="TypeError"):
            # One argument too many -> TypeError inside the trial call.
            executor.run(_seeded_draw, [(0,), (1, 2)])
