"""Multi-touch ambiguity tests (paper section 7's deferred problem)."""

import numpy as np
import pytest

from repro.core.estimator import ForceLocationEstimator
from repro.errors import SensorError
from repro.sensor.multitouch import (
    TwoPressState,
    ambiguity_report,
    effective_shorting_points,
    two_press_phases,
)


@pytest.fixture(scope="module")
def estimator(model_900):
    return ForceLocationEstimator(model_900)


class TestTwoPressState:
    def test_valid_state(self):
        state = TwoPressState(2.0, 0.025, 3.0, 0.055)
        assert state.force_a == 2.0

    def test_rejects_wrong_order(self):
        with pytest.raises(SensorError):
            TwoPressState(2.0, 0.055, 3.0, 0.025)

    def test_rejects_zero_force(self):
        with pytest.raises(SensorError):
            TwoPressState(0.0, 0.025, 3.0, 0.055)


class TestEffectiveShorting:
    def test_outermost_edges(self, tag):
        state = TwoPressState(3.0, 0.025, 3.0, 0.055)
        points = effective_shorting_points(tag, state)
        assert points is not None
        patch_a = tag.transducer.contact(3.0, 0.025)
        patch_b = tag.transducer.contact(3.0, 0.055)
        assert points[0] == pytest.approx(patch_a.left)
        assert points[1] == pytest.approx(patch_b.right)

    def test_interior_edges_shadowed(self, tag):
        """The region between the presses is invisible: moving press
        b's force barely changes port 1's edge."""
        light = TwoPressState(3.0, 0.025, 1.0, 0.055)
        heavy = TwoPressState(3.0, 0.025, 7.0, 0.055)
        p_light = effective_shorting_points(tag, light)
        p_heavy = effective_shorting_points(tag, heavy)
        assert p_light[0] == pytest.approx(p_heavy[0], abs=1e-6)

    def test_single_contact_fallback(self, tag):
        state = TwoPressState(0.05, 0.025, 4.0, 0.055)  # a below contact
        points = effective_shorting_points(tag, state)
        patch_b = tag.transducer.contact(4.0, 0.055)
        assert points[0] == pytest.approx(patch_b.left)


class TestAmbiguity:
    def test_phases_have_single_press_dimensionality(self, tag):
        phi = two_press_phases(tag, 900e6, TwoPressState(3.0, 0.025,
                                                         3.0, 0.055))
        assert len(phi) == 2
        assert all(abs(p) > np.radians(5.0) for p in phi)

    def test_close_presses_are_ambiguous(self, tag, estimator):
        """The core negative result: nearby presses fit a single-press
        hypothesis within noise — genuinely ambiguous, which is why
        the paper defers multi-touch."""
        state = TwoPressState(3.0, 0.035, 3.0, 0.045)
        result = ambiguity_report(tag, estimator, 900e6, state)
        assert result.residual_deg < 5.0

    def test_close_presses_misread_as_one_strong_press(self, tag,
                                                       estimator):
        state = TwoPressState(3.0, 0.035, 3.0, 0.045)
        result = ambiguity_report(tag, estimator, 900e6, state)
        # The inferred single press sits between the two true presses
        # and misattributes the summed force.
        assert 0.035 < result.inferred_location < 0.045
        assert result.force_misattribution > 0.2

    def test_far_presses_are_detectable(self, tag, estimator):
        """Widely separated presses imply an edge spread no single
        press can make: the residual blows up, so the reader can
        refuse the reading instead of mis-reporting it."""
        state = TwoPressState(3.0, 0.020, 3.0, 0.060)
        result = ambiguity_report(tag, estimator, 900e6, state)
        assert result.residual_deg > 15.0
        assert not result.looks_like_single_press

    def test_residual_grows_with_separation(self, tag, estimator):
        separations = [(0.035, 0.045), (0.030, 0.050), (0.025, 0.055)]
        residuals = [
            ambiguity_report(tag, estimator, 900e6,
                             TwoPressState(3.0, a, 3.0, b)).residual_deg
            for a, b in separations
        ]
        assert residuals[0] < residuals[1] < residuals[2]

    def test_no_contact_reports_zero(self, tag):
        state = TwoPressState(0.01, 0.025, 0.01, 0.055)
        phi = two_press_phases(tag, 900e6, state)
        assert phi == (0.0, 0.0)
