"""Gap-contact solver tests: the heart of the force transduction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.mechanics.beam import BeamSection, CompositeBeam
from repro.mechanics.contact import (
    ContactMap,
    ContactPatch,
    GapContactSolver,
    PressureKernel,
)
from repro.mechanics.materials import COPPER
from repro.sensor.geometry import default_sensor_design

GAP = 0.63e-3


@pytest.fixture(scope="module")
def solver():
    design = default_sensor_design()
    return design.contact_solver(nodes=161)


class TestPressureKernel:
    def test_integrates_to_force(self):
        kernel = PressureKernel.for_soft_layer(10e-3)
        x = np.linspace(0.0, 0.08, 2001)
        pressure = kernel.pressure(x, 0.04, 3.0)
        assert np.trapezoid(pressure, x) == pytest.approx(3.0, rel=1e-6)

    def test_integrates_to_force_even_clipped_at_edge(self):
        kernel = PressureKernel.for_soft_layer(10e-3)
        x = np.linspace(0.0, 0.08, 2001)
        pressure = kernel.pressure(x, 0.002, 3.0)
        assert np.trapezoid(pressure, x) == pytest.approx(3.0, rel=1e-6)

    def test_zero_force_zero_pressure(self):
        kernel = PressureKernel.for_soft_layer(10e-3)
        x = np.linspace(0.0, 0.08, 101)
        assert np.all(kernel.pressure(x, 0.04, 0.0) == 0.0)

    def test_half_width_grows_with_force(self):
        kernel = PressureKernel.for_soft_layer(10e-3)
        assert kernel.half_width(8.0) > kernel.half_width(1.0)

    def test_point_kernel_is_narrow(self):
        kernel = PressureKernel.point_like()
        assert kernel.half_width(8.0) < 1e-3

    def test_pressure_centred_on_location(self):
        kernel = PressureKernel.for_soft_layer(10e-3)
        x = np.linspace(0.0, 0.08, 2001)
        pressure = kernel.pressure(x, 0.03, 2.0)
        assert abs(x[np.argmax(pressure)] - 0.03) < 1e-4

    def test_rejects_negative_force(self):
        kernel = PressureKernel.for_soft_layer(10e-3)
        with pytest.raises(ConfigurationError):
            kernel.half_width(-1.0)

    def test_rejects_bad_base_width(self):
        with pytest.raises(ConfigurationError):
            PressureKernel(base_half_width=0.0)


class TestContactPatch:
    def test_no_contact_width_zero(self):
        patch = ContactPatch(1.0, 0.04, None, None, 0.0)
        assert not patch.in_contact
        assert patch.width == 0.0

    def test_contact_width(self):
        patch = ContactPatch(1.0, 0.04, 0.03, 0.05, GAP)
        assert patch.in_contact
        assert patch.width == pytest.approx(0.02)


class TestGapContactSolver:
    def test_zero_force_no_contact(self, solver):
        patch = solver.solve(0.0, 0.04)
        assert not patch.in_contact
        assert patch.max_deflection == 0.0

    def test_large_force_makes_contact(self, solver):
        assert solver.solve(4.0, 0.04).in_contact

    def test_contact_edges_straddle_press_point(self, solver):
        patch = solver.solve(4.0, 0.04)
        assert patch.left < 0.04 < patch.right

    def test_contact_width_grows_with_force(self, solver):
        widths = [solver.solve(f, 0.04).width for f in (2.0, 4.0, 8.0)]
        assert widths[0] < widths[1] < widths[2]

    def test_centre_press_symmetric(self, solver):
        patch = solver.solve(4.0, 0.04)
        left_margin = 0.04 - patch.left
        right_margin = patch.right - 0.04
        assert left_margin == pytest.approx(right_margin, abs=1.5e-3)

    def test_off_centre_press_mirrors(self, solver):
        left_patch = solver.solve(4.0, 0.025)
        right_patch = solver.solve(4.0, 0.055)
        assert left_patch.left == pytest.approx(0.08 - right_patch.right,
                                                abs=1.5e-3)
        assert left_patch.right == pytest.approx(0.08 - right_patch.left,
                                                 abs=1.5e-3)

    def test_deflection_capped_near_gap(self, solver):
        patch = solver.solve(6.0, 0.04)
        assert patch.max_deflection <= solver.gap * 1.01

    def test_supports_never_in_contact(self, solver):
        patch = solver.solve(8.0, 0.04)
        assert patch.left > 0.0
        assert patch.right < solver.beam.length

    def test_rejects_negative_force(self, solver):
        with pytest.raises(ConfigurationError):
            solver.solve(-1.0, 0.04)

    def test_rejects_location_outside(self, solver):
        with pytest.raises(ConfigurationError):
            solver.solve(1.0, 0.2)

    def test_rejects_too_few_nodes(self, composite_beam):
        with pytest.raises(ConfigurationError):
            GapContactSolver(composite_beam, GAP,
                             PressureKernel.for_soft_layer(10e-3), nodes=8)

    def test_rejects_nonpositive_gap(self, composite_beam):
        with pytest.raises(ConfigurationError):
            GapContactSolver(composite_beam, 0.0,
                             PressureKernel.for_soft_layer(10e-3))

    def test_decay_length_infinite_without_foundation(self, composite_beam):
        solver = GapContactSolver(composite_beam, GAP,
                                  PressureKernel.for_soft_layer(10e-3),
                                  foundation_stiffness=0.0)
        assert solver.decay_length == float("inf")

    def test_decay_length_formula(self, composite_beam):
        stiffness = 3e3
        solver = GapContactSolver(composite_beam, GAP,
                                  PressureKernel.for_soft_layer(10e-3),
                                  foundation_stiffness=stiffness)
        expected = (4 * composite_beam.bending_stiffness / stiffness) ** 0.25
        assert solver.decay_length == pytest.approx(expected)

    def test_grid_is_readonly(self, solver):
        with pytest.raises(ValueError):
            solver.grid[0] = 1.0

    @settings(max_examples=20, deadline=None)
    @given(force=st.floats(min_value=1.0, max_value=8.0),
           location=st.floats(min_value=0.015, max_value=0.065))
    def test_contact_region_contains_press(self, solver, force, location):
        # At low force near the beam ends first contact can form a few
        # millimetres inboard of the press (global bending), so allow a
        # tolerance of half the soft-layer spread.
        patch = solver.solve(force, location)
        if patch.in_contact:
            assert patch.left - 5e-3 <= location <= patch.right + 5e-3

    @settings(max_examples=12, deadline=None)
    @given(location=st.floats(min_value=0.02, max_value=0.06))
    def test_width_monotone_in_force(self, solver, location):
        small = solver.solve(2.0, location).width
        large = solver.solve(7.0, location).width
        assert large >= small


class TestOperatorAssembly:
    def test_equal_solvers_share_one_operator(self):
        """The bending operator depends only on (grid, EI, k_f), so
        equal discretisations reuse one assembly across instances."""
        design = default_sensor_design()
        a = design.contact_solver(nodes=161)
        b = design.contact_solver(nodes=161)
        assert a._stencil is b._stencil
        assert a._banded is b._banded

    def test_shared_operator_is_read_only(self):
        design = default_sensor_design()
        solver = design.contact_solver(nodes=161)
        with pytest.raises(ValueError):
            solver._banded[0, 0] = 1.0
        with pytest.raises(ValueError):
            solver._stencil[0, 0] = 1.0

    def test_distinct_grids_get_distinct_operators(self):
        design = default_sensor_design()
        a = design.contact_solver(nodes=161)
        b = design.contact_solver(nodes=321)
        assert a._banded is not b._banded

    def test_solves_unchanged_by_sharing(self, solver):
        """Interleaved solves on two solvers sharing one operator
        match a fresh solver's results exactly."""
        design = default_sensor_design()
        other = design.contact_solver(nodes=161)
        first = solver.solve(3.0, 0.045)
        other.solve(7.0, 0.02)
        second = solver.solve(3.0, 0.045)
        assert first == second


class TestThinTraceContrast:
    def test_thin_trace_contact_barely_moves(self):
        """The Fig. 4 claim: without the soft beam the shorting points
        are nearly force-invariant."""
        trace = CompositeBeam(
            [BeamSection(COPPER, width=2.5e-3, thickness=35e-6)],
            length=80e-3)
        solver = GapContactSolver(trace, GAP, PressureKernel.point_like(),
                                  nodes=161, foundation_stiffness=37.5e3)
        soft_solver = default_sensor_design().contact_solver(nodes=161)
        thin_travel = (solver.solve(6.0, 0.04).width
                       - solver.solve(1.0, 0.04).width)
        soft_travel = (soft_solver.solve(6.0, 0.04).width
                       - soft_solver.solve(1.0, 0.04).width)
        assert soft_travel > 4.0 * max(thin_travel, 1e-6)


class TestContactMap:
    @pytest.fixture(scope="class")
    def contact_map(self, solver=None):
        design = default_sensor_design()
        return ContactMap(design.contact_solver(nodes=161), max_force=9.0,
                          force_points=12, location_points=13)

    def test_interpolation_close_to_exact(self, contact_map):
        design = default_sensor_design()
        solver = design.contact_solver(nodes=161)
        exact = solver.solve(3.0, 0.045)
        approx = contact_map.edges(3.0, 0.045)
        assert approx.left == pytest.approx(exact.left, abs=1.5e-3)
        assert approx.right == pytest.approx(exact.right, abs=1.5e-3)

    def test_zero_force_no_contact(self, contact_map):
        assert not contact_map.edges(0.0, 0.04).in_contact

    def test_below_threshold_no_contact(self, contact_map):
        assert not contact_map.edges(1e-4, 0.04).in_contact

    def test_clips_to_grid(self, contact_map):
        patch = contact_map.edges(50.0, 0.04)
        assert patch.in_contact
        assert patch.width <= 0.08

    def test_rejects_negative_force(self, contact_map):
        with pytest.raises(ConfigurationError):
            contact_map.edges(-1.0, 0.04)

    def test_location_range_within_beam(self, contact_map):
        low, high = contact_map.location_range
        assert 0.0 < low < high < 0.08
