"""Chaos harness: determinism, survival accounting, report shape.

The load-bearing acceptance properties: two chaos runs with identical
(plan, seed, profile) arguments produce bit-identical ``events`` and
``survival`` blocks, the built-in default plan produces zero crashes
with a survival rate >= 0.95, and the report carries a
``schema_version=2`` manifest.
"""

from __future__ import annotations

import pytest

from repro.faults import armed
from repro.faults.chaos import (
    GRACEFUL_QUALITIES,
    _survival,
    default_plan,
    default_profile,
    run_chaos,
    summarize,
)
from repro.errors import QueueFullError
from repro.serve.loadgen import LoadProfile
from repro.serve.protocol import EstimateResponse


@pytest.fixture(scope="module")
def small_profile():
    return LoadProfile(sensors=2, requests_per_sensor=24)


@pytest.fixture(scope="module")
def chaos_pair(model_900, small_profile):
    """Two independent chaos runs with identical arguments."""
    factory = lambda config: model_900  # noqa: E731
    return tuple(
        run_chaos(profile=small_profile, seed=0, model_factory=factory)
        for _ in range(2)
    )


class TestDefaultPlan:
    def test_targets_only_the_scheduler_site(self):
        plan = default_plan()
        assert plan.sites == ("serve.scheduler",)
        kinds = {spec.kind for spec in plan.specs}
        assert kinds == {"stall", "slow_consumer", "reject"}

    def test_seed_threads_through(self):
        assert default_plan(5).seed == 5
        assert default_plan(5) != default_plan(6)

    def test_default_profile_is_ci_sized(self):
        profile = default_profile()
        assert profile.total_requests <= 256


class TestChaosRun:
    def test_events_and_survival_are_deterministic(self, chaos_pair):
        first, second = chaos_pair
        assert first["events"] == second["events"]
        assert first["survival"] == second["survival"]
        assert first["injected_faults"] == second["injected_faults"]

    def test_faults_were_actually_injected(self, chaos_pair):
        report = chaos_pair[0]
        assert report["injected_faults"] > 0
        assert all(event["site"] == "serve.scheduler"
                   for event in report["events"])

    def test_survival_acceptance_bar(self, chaos_pair):
        survival = chaos_pair[0]["survival"]
        assert survival["crashes"] == 0
        assert survival["crash_types"] == []
        assert survival["survival_rate"] >= 0.95
        assert survival["total_requests"] == 48

    def test_accounting_adds_up(self, chaos_pair):
        survival = chaos_pair[0]["survival"]
        graceful = sum(survival[q] for q in GRACEFUL_QUALITIES)
        assert survival["graceful"] == graceful
        assert survival["faulted_requests"] == (
            graceful + survival["shed"] + survival["crashes"])
        assert (survival["ok"] + survival["faulted_requests"]
                == survival["total_requests"])

    def test_report_is_manifest_stamped(self, chaos_pair):
        report = chaos_pair[0]
        manifest = report["manifest"]
        assert report["schema_version"] == 2
        assert {"config_hash", "git_sha", "python_version",
                "platform"} <= set(manifest)

    def test_seed_override_rebuilds_plan(self, model_900,
                                         small_profile):
        plan = default_plan(0)
        report = run_chaos(plan=plan, seed=3, profile=small_profile,
                           model_factory=lambda config: model_900)
        assert report["plan"]["seed"] == 3
        assert report["plan"]["name"] == plan.name

    def test_disarms_after_run(self, chaos_pair):
        assert chaos_pair is not None
        assert armed() is None

    def test_summarize_renders_the_key_numbers(self, chaos_pair):
        text = summarize(chaos_pair[0])
        assert "survival rate" in text
        assert "crashes 0" in text


class TestSurvivalAccounting:
    def _response(self, quality):
        from repro.core.estimator import ForceLocationEstimate

        return EstimateResponse(
            sensor_id="s", sequence=0, time=0.0,
            estimate=ForceLocationEstimate(force=1.0, location=0.02,
                                           residual=0.0, touched=True),
            quality=quality)

    def test_counts_each_outcome_class(self):
        outcomes = [
            self._response("ok"),
            self._response("degraded"),
            self._response("recovered"),
            self._response("quarantined"),
            QueueFullError("full"),
            RuntimeError("boom"),
        ]
        survival = _survival(outcomes)
        assert survival["ok"] == 1
        assert survival["degraded"] == 1
        assert survival["recovered"] == 1
        assert survival["quarantined"] == 1
        assert survival["shed"] == 1
        assert survival["crashes"] == 1
        assert survival["crash_types"] == ["RuntimeError"]
        assert survival["survival_rate"] == pytest.approx(3 / 5)

    def test_no_faults_is_perfect_survival(self):
        survival = _survival([self._response("ok")] * 4)
        assert survival["faulted_requests"] == 0
        assert survival["survival_rate"] == 1.0
