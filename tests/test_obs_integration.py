"""End-to-end observability: subsystems record into one registry.

These tests drive the real reader, estimator, tracker, and campaign
executor under :func:`repro.obs.observed` and assert the documented
instrument names show up with sane values — the contract the
``repro obs-report`` CLI and the benchmark manifests rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import ForceLocationEstimator
from repro.experiments.montecarlo import environment_campaign
from repro.experiments.parallel import CampaignExecutor
from repro.experiments.scenarios import build_wireless_scenario
from repro.obs import is_enabled, observed
from repro.sensor.tag import TagState


@pytest.fixture(scope="module")
def wireless_reader():
    return build_wireless_scenario(900e6, seed=55, fast=True)


def test_instrumentation_off_by_default(model_900):
    """No observation leaks into normal test runs."""
    assert not is_enabled()
    estimator = ForceLocationEstimator(model_900)
    estimate = estimator.invert(0.01, -0.02)
    assert not estimate.touched  # the plain path still works


def test_reader_records_captures_and_baseline(wireless_reader):
    with observed() as registry:
        wireless_reader.capture_baseline()
        reading = wireless_reader.read(TagState(3.0, 0.040))
    assert reading.estimate.touched
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    assert counters["reader.baselines"] == 1
    assert counters["reader.reads"] == 1
    # Baseline groups + the read's capture all flow through one path.
    assert counters["reader.captures"] >= 2
    assert counters["reader.frames"] > 0
    histograms = snapshot["histograms"]
    assert histograms["reader.baseline_phase_noise_rad"]["count"] > 0
    assert histograms["span.reader.read.seconds"]["count"] == 1
    assert histograms["span.reader.capture_baseline.seconds"]["count"] == 1
    assert histograms["span.reader.measure_phases.seconds"]["count"] == 1


def test_estimator_records_inversions(model_900):
    estimator = ForceLocationEstimator(model_900)
    rng = np.random.default_rng(7)
    forces = rng.uniform(1.0, 6.0, 16)
    locations = rng.uniform(0.02, 0.06, 16)
    phi1, phi2 = model_900.predict_batch(forces, locations)
    with observed() as registry:
        estimator.invert(float(phi1[0]), float(phi2[0]))
        estimator.invert(0.001, -0.001)  # below touch threshold
        batch = estimator.invert_batch(phi1, phi2)
    assert batch.force.shape == (16,)
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    assert counters["estimator.inversions"] == 2
    assert counters["estimator.no_touch"] == 1
    assert counters["estimator.batch_inversions"] == 1
    assert counters["estimator.batched_samples"] == 16
    assert counters["estimator.grid_stages"] > 0
    histograms = snapshot["histograms"]
    assert histograms["estimator.invert_seconds"]["count"] == 2
    assert histograms["estimator.batch_seconds"]["count"] == 1
    assert histograms["estimator.batch_size"]["mean"] == 16.0


def test_instrumented_inversion_matches_uninstrumented(model_900):
    """Observation must never change numerical results."""
    estimator = ForceLocationEstimator(model_900)
    phi1, phi2 = model_900.predict_batch(
        np.array([2.0, 5.0]), np.array([0.03, 0.05]))
    plain = estimator.invert_batch(phi1, phi2)
    with observed():
        watched = estimator.invert_batch(phi1, phi2)
    assert np.array_equal(plain.force, watched.force)
    assert np.array_equal(plain.location, watched.location)
    assert np.array_equal(plain.touched, watched.touched)


def test_tracker_records_stream_counters(wireless_reader):
    from repro.core.tracking import StreamingTracker

    sounder = wireless_reader.sounder
    extractor = wireless_reader.extractor
    group = extractor.group_length
    baseline = sounder.capture(TagState(), 6 * group)
    tracker = StreamingTracker(wireless_reader.model, extractor,
                               baseline_groups=4)
    with observed() as registry:
        samples = tracker.process(baseline)
    counters = registry.snapshot()["counters"]
    assert counters["tracker.streams"] == 1
    assert counters["tracker.groups"] == len(samples)
    assert counters["tracker.touched_groups"] == sum(
        1 for s in samples if s.touched)
    histograms = registry.snapshot()["histograms"]
    assert histograms["span.tracker.process.seconds"]["count"] == 1


@pytest.mark.integration
def test_campaign_records_trials_and_utilization():
    with observed() as registry:
        execution = environment_campaign(
            2, executor=CampaignExecutor(workers=2))
    assert execution is not None
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    assert counters["campaign.runs"] == 1
    assert counters["campaign.trials"] == 2
    assert snapshot["histograms"]["campaign.trial_seconds"]["count"] == 2
    assert snapshot["histograms"]["campaign.wall_seconds"]["count"] == 1
    utilization = snapshot["gauges"]["campaign.worker_utilization"]
    assert 0.0 < utilization <= 1.0
