"""Opt-in profiler: aggregation, report table, disabled no-op."""

from __future__ import annotations

import time

from repro.obs import Profiler
from repro.obs.profiler import _NULL_SECTION


class TestAggregation:
    def test_records_calls_and_totals(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.section("stage"):
                pass
        stats = profiler.stats()["stage"]
        assert stats.calls == 3
        assert stats.total_s >= 0.0
        assert stats.max_s >= stats.mean_s

    def test_mean_is_total_over_calls(self):
        profiler = Profiler()
        profiler._record("s", 1.0)
        profiler._record("s", 3.0)
        stats = profiler.stats()["s"]
        assert stats.mean_s == 2.0
        assert stats.max_s == 3.0

    def test_sections_time_wall_clock(self):
        profiler = Profiler()
        with profiler.section("sleep"):
            time.sleep(0.01)
        assert profiler.stats()["sleep"].total_s >= 0.009

    def test_records_even_when_body_raises(self):
        profiler = Profiler()
        try:
            with profiler.section("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert profiler.stats()["boom"].calls == 1

    def test_reset_clears(self):
        profiler = Profiler()
        with profiler.section("s"):
            pass
        profiler.reset()
        assert profiler.stats() == {}


class TestDisabled:
    def test_disabled_hands_out_shared_noop(self):
        profiler = Profiler(enabled=False)
        section = profiler.section("ignored")
        assert section is _NULL_SECTION
        with section:
            pass
        assert profiler.stats() == {}

    def test_disabled_report_is_empty_message(self):
        assert (Profiler(enabled=False).report()
                == "profiler: no sections recorded")


class TestReport:
    def test_table_ranks_by_total(self):
        profiler = Profiler()
        profiler._record("cold", 0.1)
        profiler._record("hot", 0.9)
        report = profiler.report()
        lines = report.splitlines()
        assert "stage" in lines[0] and "share" in lines[0]
        assert lines[2].startswith("hot")
        assert lines[3].startswith("cold")
        assert "90.0%" in lines[2]
        assert "10.0%" in lines[3]

    def test_empty_report_message(self):
        assert Profiler().report() == "profiler: no sections recorded"
