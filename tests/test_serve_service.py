"""InferenceService end-to-end: routing, parity, telemetry, events.

The load-bearing guarantee is *batch parity*: whatever micro-batches
the scheduler happens to form, every response must be element-wise
equal to what the scalar ``ForceLocationEstimator.invert`` path
returns for the same phases.  The hypothesis property below drives
randomized multi-sensor loads through the full service to check it.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimator import ForceLocationEstimator
from repro.errors import ServeError
from repro.serve import (
    BatchPolicy,
    EstimateRequest,
    InferenceService,
    SensorConfig,
)

#: Phases seen in practice live well inside one wrap.
_PHASE = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False,
                   allow_infinity=False)


def _service(model, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch=8,
                                            max_delay_s=0.001))
    return InferenceService(model_factory=lambda config: model, **kwargs)


def _requests(phases, sensors=3):
    config = SensorConfig()
    return [
        EstimateRequest(sensor_id=f"s-{index % sensors}",
                        sequence=index // sensors,
                        time=0.01 * (index // sensors),
                        phi1=phi1, phi2=phi2, config=config)
        for index, (phi1, phi2) in enumerate(phases)
    ]


class TestServiceBasics:
    def test_response_echoes_request_identity(self, model_900):
        service = _service(model_900)
        request = _requests([(0.5, 0.4)])[0]
        response = asyncio.run(service.estimate(request))
        assert response.sensor_id == request.sensor_id
        assert response.sequence == request.sequence
        assert response.time == request.time
        assert response.batch_size >= 1
        assert response.latency_s >= 0.0

    def test_dict_boundary_roundtrip(self, model_900):
        service = _service(model_900)
        payload = _requests([(0.6, 0.5)])[0].to_dict()
        response = asyncio.run(service.estimate_dict(payload))
        assert response["sensor_id"] == payload["sensor_id"]
        assert set(response["estimate"]) == {"force", "location",
                                             "residual", "touched"}

    def test_untouched_sample_is_classified_untouched(self, model_900):
        service = _service(model_900)
        response = asyncio.run(service.estimate(
            _requests([(0.0, 0.0)])[0]))
        assert not response.touched
        assert response.force == 0.0

    def test_telemetry_snapshot_counts_requests(self, model_900):
        service = _service(model_900)
        requests = _requests([(0.5, 0.4), (0.7, 0.6), (0.0, 0.0)])
        asyncio.run(service.estimate_many(requests))
        snapshot = service.telemetry_snapshot()
        assert snapshot["counters"]["serve.requests"] == 3
        assert snapshot["counters"]["serve.responses"] == 3
        assert snapshot["histograms"]["serve.latency_seconds"]["count"] == 3
        assert snapshot["sessions"]["count"] == 3
        assert snapshot["sessions"]["model_builds"] == 1

    def test_touch_events_served_history(self, model_900):
        service = _service(model_900)
        phi1, phi2 = model_900.predict_batch(
            np.array([3.0, 4.0]), np.array([0.04, 0.04]))
        requests = [
            EstimateRequest(sensor_id="s-0", sequence=0, time=0.00,
                            phi1=0.0, phi2=0.0),
            EstimateRequest(sensor_id="s-0", sequence=1, time=0.01,
                            phi1=float(phi1[0]), phi2=float(phi2[0])),
            EstimateRequest(sensor_id="s-0", sequence=2, time=0.02,
                            phi1=float(phi1[1]), phi2=float(phi2[1])),
            EstimateRequest(sensor_id="s-0", sequence=3, time=0.03,
                            phi1=0.0, phi2=0.0),
        ]
        asyncio.run(service.estimate_many(requests))
        events = service.touch_events("s-0")
        assert len(events) == 1
        assert events[0].onset == 0.01
        assert events[0].release == 0.02
        assert events[0].peak_force > 0.0

    def test_touch_events_unknown_sensor_raises(self, model_900):
        service = _service(model_900)
        with pytest.raises(ServeError):
            service.touch_events("never-served")


class TestServiceParity:
    """Service == scalar invert, element-wise, under random loads."""

    @settings(max_examples=20, deadline=None)
    @given(phases=st.lists(st.tuples(_PHASE, _PHASE), min_size=1,
                           max_size=24),
           sensors=st.integers(min_value=1, max_value=4),
           max_batch=st.integers(min_value=1, max_value=16))
    def test_randomized_multi_sensor_parity(self, model_900, phases,
                                            sensors, max_batch):
        reference = ForceLocationEstimator(model_900)
        service = _service(
            model_900,
            policy=BatchPolicy(max_batch=max_batch, max_delay_s=0.001))
        requests = _requests(phases, sensors=sensors)
        responses = asyncio.run(service.estimate_many(requests))
        for request, response in zip(requests, responses):
            expected = reference.invert(request.phi1, request.phi2)
            assert response.estimate == expected

    def test_disabled_batching_parity(self, model_900):
        reference = ForceLocationEstimator(model_900)
        rng = np.random.default_rng(11)
        phases = list(zip(rng.uniform(-3, 3, 12),
                          rng.uniform(-3, 3, 12)))
        service = _service(model_900,
                           policy=BatchPolicy(enabled=False))
        responses = asyncio.run(
            service.estimate_many(_requests(phases)))
        for (phi1, phi2), response in zip(phases, responses):
            assert response.batch_size == 1
            assert response.estimate == reference.invert(phi1, phi2)

    def test_baseline_corrected_stream_parity(self, model_900):
        """With warmup enabled, parity holds on the corrected phases."""
        reference = ForceLocationEstimator(model_900)
        service = _service(model_900, baseline_samples=2)
        drift = 0.07
        requests = [
            EstimateRequest(sensor_id="s-0", sequence=index,
                            time=0.1 * index,
                            phi1=drift * 0.1 * index + extra,
                            phi2=-drift * 0.1 * index + extra)
            for index, extra in enumerate((0.0, 0.0, 0.9, 1.2))
        ]

        async def drive():
            responses = []
            for request in requests:  # in stream order
                responses.append(await service.estimate(request))
            return responses

        responses = asyncio.run(drive())
        # The post-warmup samples were corrected before inversion.
        for request, response in zip(requests[2:], responses[2:]):
            expected = reference.invert(
                request.phi1 - drift * request.time,
                request.phi2 + drift * request.time)
            assert response.estimate.force == pytest.approx(
                expected.force)
            assert response.estimate.location == pytest.approx(
                expected.location)
