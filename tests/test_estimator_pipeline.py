"""Estimator inversion and end-to-end reader pipeline tests."""

import numpy as np
import pytest

from repro.core.calibration import harmonic_differential_phases
from repro.core.estimator import ForceLocationEstimator
from repro.core.pipeline import WiForceReader
from repro.errors import EstimationError, ReaderError
from repro.experiments.scenarios import build_wireless_scenario
from repro.sensor.tag import TagState


@pytest.fixture(scope="module")
def estimator(model_900):
    return ForceLocationEstimator(model_900)


@pytest.fixture(scope="module")
def wireless_reader():
    reader = build_wireless_scenario(900e6, seed=77, fast=True)
    reader.capture_baseline()
    return reader


class TestEstimator:
    @pytest.mark.parametrize("force,location", [
        (1.5, 0.025), (3.0, 0.040), (5.0, 0.050), (7.0, 0.058),
    ])
    def test_noiseless_inversion_accurate(self, estimator, tag, force,
                                          location):
        phases = harmonic_differential_phases(tag, 900e6, force, location)
        estimate = estimator.invert(*phases)
        assert estimate.touched
        # The phase-force curve saturates at high force, so a fixed
        # model error costs proportionally more newtons there.
        assert estimate.force == pytest.approx(force,
                                               abs=max(0.35, 0.12 * force))
        assert estimate.location == pytest.approx(location, abs=1.5e-3)

    def test_small_phases_mean_no_touch(self, estimator):
        estimate = estimator.invert(0.01, -0.02)
        assert not estimate.touched
        assert estimate.force == 0.0

    def test_location_hint_restricts_search(self, estimator, tag):
        phases = harmonic_differential_phases(tag, 900e6, 4.0, 0.040)
        estimate = estimator.invert(*phases, location_hint=0.040)
        assert estimate.location == pytest.approx(0.040, abs=1.5e-3)

    def test_bad_hint_rejected(self, estimator):
        with pytest.raises(EstimationError):
            estimator.invert(1.0, 1.0, location_hint=0.5)

    def test_residual_small_at_optimum(self, estimator, tag):
        phases = harmonic_differential_phases(tag, 900e6, 3.0, 0.040)
        estimate = estimator.invert(*phases)
        assert estimate.residual < np.radians(3.0)

    def test_rejects_bad_threshold(self, model_900):
        with pytest.raises(EstimationError):
            ForceLocationEstimator(model_900, touch_threshold_deg=-1.0)

    def test_rejects_bad_resolution(self, model_900):
        with pytest.raises(EstimationError):
            ForceLocationEstimator(model_900, force_resolution=0.0)


class TestWiForceReader:
    def test_read_requires_baseline_or_rebaselines(self):
        reader = build_wireless_scenario(900e6, seed=3, fast=True)
        reading = reader.read(TagState(3.0, 0.040))  # auto-baselines
        assert reading.estimate.touched

    def test_untouched_reads_as_no_force(self, wireless_reader):
        reading = wireless_reader.read(TagState())
        assert not reading.estimate.touched
        assert reading.force == 0.0

    def test_end_to_end_accuracy(self, wireless_reader):
        """The headline loop: wireless reading matches the press."""
        reading = wireless_reader.read(TagState(3.0, 0.040),
                                       rebaseline=True)
        assert reading.force == pytest.approx(3.0, abs=0.5)
        assert reading.location == pytest.approx(0.040, abs=1.5e-3)

    def test_drift_rates_fitted(self, wireless_reader):
        rates = wireless_reader.drift_rates
        assert set(rates) == {1e3, 4e3}
        # 20 ppm on a 1 kHz clock is 2 pi * 0.02 rad/s at the tone.
        assert rates[1e3] == pytest.approx(2 * np.pi * 0.02, abs=0.08)

    def test_drift_scales_with_tone(self, wireless_reader):
        rates = wireless_reader.drift_rates
        assert rates[4e3] == pytest.approx(4 * rates[1e3], abs=0.15)

    def test_elapsed_advances(self, wireless_reader):
        before = wireless_reader.elapsed
        wireless_reader.read(TagState(2.0, 0.04))
        assert wireless_reader.elapsed > before

    def test_read_sequence(self, wireless_reader):
        states = [TagState(2.0, 0.040), TagState(4.0, 0.040)]
        readings = wireless_reader.read_sequence(states)
        assert len(readings) == 2
        assert readings[1].force > readings[0].force

    def test_frames_per_capture(self, wireless_reader):
        assert wireless_reader.frames_per_capture == (
            wireless_reader.extractor.group_length
            * wireless_reader.groups_per_capture)

    def test_rejects_bad_groups(self, model_900, wireless_reader):
        with pytest.raises(ReaderError):
            WiForceReader(wireless_reader.sounder, model_900,
                          groups_per_capture=0)

    def test_rejects_bad_baseline_groups(self, model_900, wireless_reader):
        with pytest.raises(ReaderError):
            WiForceReader(wireless_reader.sounder, model_900,
                          baseline_groups=1)


class TestReadWithUncertainty:
    def test_returns_bars_for_touch(self, wireless_reader):
        reading, bars = wireless_reader.read_with_uncertainty(
            TagState(3.0, 0.040), rebaseline=True)
        assert reading.estimate.touched
        assert bars is not None
        assert 0.0 < bars.force_std < 2.0
        assert 0.0 < bars.location_std < 3e-3

    def test_no_touch_no_bars(self, wireless_reader):
        reading, bars = wireless_reader.read_with_uncertainty(
            TagState(), rebaseline=True)
        assert not reading.estimate.touched
        assert bars is None

    def test_bars_cover_truth_mostly(self, wireless_reader):
        """3-sigma intervals should contain the true force."""
        hits = 0
        for force in (2.0, 4.0, 6.0):
            reading, bars = wireless_reader.read_with_uncertainty(
                TagState(force, 0.040), rebaseline=True)
            low, high = bars.force_interval(reading.estimate, sigmas=3.0)
            # Allow for the cubic model's own bias at high force.
            if low - 0.3 <= force <= high + 0.3:
                hits += 1
        assert hits >= 2

    def test_phase_noise_measured(self, wireless_reader):
        wireless_reader.capture_baseline()
        noise = wireless_reader.baseline_phase_noise
        assert set(noise) == {1e3, 4e3}
        assert all(0.0 <= v < np.radians(5.0) for v in noise.values())
        assert wireless_reader.measured_phase_std() >= 0.0

    def test_measured_phase_std_requires_baseline(self, model_900):
        from repro.experiments.scenarios import build_wireless_scenario
        fresh = build_wireless_scenario(900e6, seed=123, fast=True)
        with pytest.raises(ReaderError):
            fresh.measured_phase_std()
