"""Load-generation shapes: arrival patterns and pacing.

The heavy-tailed arrival option must change *when* requests are
submitted, never *what* is requested — the request list is seeded
independently of the gap draws — and the Pareto gaps must keep the
configured mean rate while being visibly burstier than uniform.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import (
    EstimateRequest,
    InferenceService,
    LoadProfile,
    SensorConfig,
    generate_requests,
    run_service_load,
)
from repro.serve.loadgen import generate_arrival_offsets


class TestArrivalOffsets:
    def test_closed_loop_default_has_no_offsets(self):
        assert generate_arrival_offsets(LoadProfile()) is None

    def test_uniform_offsets_are_evenly_spaced(self):
        profile = LoadProfile(sensors=2, requests_per_sensor=8,
                              arrival_rate_rps=100.0)
        offsets = generate_arrival_offsets(profile)
        assert offsets is not None
        assert offsets[0] == 0.0
        gaps = np.diff(offsets)
        assert np.allclose(gaps, 0.01)

    def test_pareto_offsets_keep_the_mean_rate(self):
        profile = LoadProfile(sensors=25, requests_per_sensor=400,
                              arrival="pareto",
                              arrival_rate_rps=1000.0,
                              pareto_alpha=2.5)
        offsets = generate_arrival_offsets(profile)
        gaps = np.diff(offsets)
        # Mean gap within 10% of 1/rate for a 10k-draw sample.
        assert np.mean(gaps) == pytest.approx(1e-3, rel=0.1)
        # Minimum possible gap is mean * (alpha-1)/alpha.
        assert gaps.min() >= 1e-3 * (2.5 - 1.0) / 2.5 - 1e-12

    def test_pareto_is_burstier_than_uniform(self):
        kwargs = dict(sensors=25, requests_per_sensor=400,
                      arrival_rate_rps=1000.0)
        uniform = np.diff(generate_arrival_offsets(
            LoadProfile(arrival="uniform", **kwargs)))
        pareto = np.diff(generate_arrival_offsets(
            LoadProfile(arrival="pareto", **kwargs)))
        assert np.std(pareto) > 10 * np.std(uniform)
        # Heavy tail: the largest gap dwarfs the mean.
        assert pareto.max() > 5 * np.mean(pareto)

    def test_offsets_are_deterministic_per_seed(self):
        profile = LoadProfile(arrival="pareto", arrival_rate_rps=50.0,
                              seed=3)
        first = generate_arrival_offsets(profile)
        second = generate_arrival_offsets(profile)
        np.testing.assert_array_equal(first, second)
        reseeded = generate_arrival_offsets(
            LoadProfile(arrival="pareto", arrival_rate_rps=50.0,
                        seed=4))
        assert not np.array_equal(first, reseeded)

    def test_arrival_shape_never_changes_the_requests(self, model_900):
        burst = LoadProfile(sensors=2, requests_per_sensor=4,
                            arrival="pareto", arrival_rate_rps=10.0)
        closed = LoadProfile(sensors=2, requests_per_sensor=4)
        assert generate_requests(model_900, burst) \
            == generate_requests(model_900, closed)

    def test_validation(self):
        with pytest.raises(ServeError):
            LoadProfile(arrival="poisson")
        with pytest.raises(ServeError):
            LoadProfile(arrival_rate_rps=-1.0)
        with pytest.raises(ServeError):
            LoadProfile(arrival="pareto", pareto_alpha=1.0)


class TestPacedServiceLoad:
    def test_paced_submission_serves_everything(self, model_900):
        service = InferenceService(
            model_factory=lambda config: model_900)
        config = SensorConfig()
        requests = [
            EstimateRequest(sensor_id="s", sequence=index,
                            time=0.01 * index, phi1=0.2, phi2=0.1,
                            config=config)
            for index in range(6)
        ]
        offsets = np.linspace(0.0, 5e-3, len(requests))
        responses, wall = asyncio.run(
            run_service_load(service, requests, offsets))
        assert [r.sequence for r in responses] == list(range(6))
        assert all(r.quality == "ok" for r in responses)
        assert wall >= 5e-3
