"""Distributed tracing: IDs, the traceparent codec, stitched trees.

The codec tests are the hostile-input contract: ``parse_traceparent``
is **total** — any string (or non-string) either decodes to a valid
:class:`TraceContext` or answers ``None``, never raises — and
well-formed headers round-trip exactly.  The stitching tests drive the
real serve stack and the campaign executor and assert every span of
one request shares one trace ID with correct parent links.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import MemorySink, observed
from repro.obs import trace
from repro.obs.trace import (
    TraceContext,
    UNSAMPLED,
    parse_traceparent,
    render_waterfall,
    request_context,
    trace_sampled,
)
from repro.serve import BatchPolicy, EstimateRequest, InferenceService, SensorConfig

_HEX = "0123456789abcdef"
_TRACE_IDS = st.text(_HEX, min_size=32, max_size=32).filter(
    lambda t: t != "0" * 32)
_SPAN_IDS = st.text(_HEX, min_size=16, max_size=16).filter(
    lambda s: s != "0" * 16)


class TestIds:
    def test_trace_ids_are_32_hex_and_unique(self):
        ids = {trace.new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 32 and int(t, 16) >= 0 for t in ids)

    def test_span_ids_are_16_hex_and_unique(self):
        ids = [trace.new_span_id() for _ in range(512)]
        assert len(set(ids)) == 512
        assert all(len(s) == 16 and int(s, 16) > 0 for s in ids)


class TestSampling:
    def test_rate_bounds(self):
        assert trace_sampled("f" * 32, 1.0)
        assert not trace_sampled("0" * 31 + "1", 0.0)

    def test_decision_is_deterministic(self):
        tid = trace.new_trace_id()
        decisions = {trace_sampled(tid, 0.5) for _ in range(10)}
        assert len(decisions) == 1

    def test_rate_halves_roughly_half(self):
        sampled = sum(trace_sampled(trace.new_trace_id(), 0.5)
                      for _ in range(400))
        assert 100 < sampled < 300

    def test_sample_rate_parses_and_clamps(self, monkeypatch):
        assert trace.sample_rate({}) == 1.0
        assert trace.sample_rate({trace.TRACE_SAMPLE_ENV: "0.25"}) == 0.25
        assert trace.sample_rate({trace.TRACE_SAMPLE_ENV: "7"}) == 1.0
        assert trace.sample_rate({trace.TRACE_SAMPLE_ENV: "-1"}) == 0.0
        assert trace.sample_rate({trace.TRACE_SAMPLE_ENV: "nope"}) == 1.0

    def test_unsampled_child_is_self(self):
        assert UNSAMPLED.child() is UNSAMPLED

    def test_request_context_always_has_real_ids(self, monkeypatch):
        monkeypatch.setenv(trace.TRACE_SAMPLE_ENV, "0")
        context = request_context()
        assert context.trace_id != "0" * 32
        assert not context.sampled


class TestTraceparentCodec:
    @given(trace_id=_TRACE_IDS, span_id=_SPAN_IDS,
           sampled=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, trace_id, span_id, sampled):
        context = TraceContext(trace_id, span_id, sampled)
        parsed = parse_traceparent(context.to_traceparent())
        assert parsed == context

    @given(st.text(max_size=80))
    @settings(max_examples=300, deadline=None)
    def test_total_on_arbitrary_text(self, header):
        parsed = parse_traceparent(header)
        if parsed is not None:
            assert parse_traceparent(parsed.to_traceparent()) == parsed

    @given(st.one_of(st.none(), st.integers(), st.binary(max_size=16),
                     st.lists(st.text(max_size=4))))
    @settings(max_examples=100, deadline=None)
    def test_total_on_non_strings(self, junk):
        assert parse_traceparent(junk) is None

    @pytest.mark.parametrize("header", [
        "",
        "00",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",   # zero trace id
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",   # zero span id
        "ff-" + "a" * 32 + "-" + "1" * 16 + "-01",   # forbidden version
        "00-" + "A" * 32 + "-" + "1" * 16 + "-01",   # uppercase hex
        "00-" + "a" * 31 + "-" + "1" * 16 + "-01",   # short trace id
        "00-" + "a" * 32 + "-" + "1" * 15 + "-01",   # short span id
        "00-" + "a" * 32 + "-" + "1" * 16 + "-0x",   # bad flags
        "00-" + "a" * 32 + "-" + "1" * 16 + "-01-extra",  # v00 + extras
        "0-aa-bb-01",
    ])
    def test_malformed_headers_degrade_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_future_version_with_extra_fields_parses(self):
        header = "01-" + "a" * 32 + "-" + "1" * 16 + "-01-future"
        parsed = parse_traceparent(header)
        assert parsed is not None
        assert parsed.sampled

    def test_flags_bit_zero_is_the_sampling_decision(self):
        base = "00-" + "a" * 32 + "-" + "1" * 16
        assert parse_traceparent(base + "-01").sampled
        assert not parse_traceparent(base + "-00").sampled
        assert parse_traceparent(base + "-03").sampled


class TestAmbientContext:
    def test_use_context_scopes_and_restores(self):
        context = request_context()
        assert trace.current_context() is None
        with trace.use_context(context):
            assert trace.current_context() == context
            assert trace.current_traceparent() \
                == context.to_traceparent()
        assert trace.current_context() is None
        assert trace.current_traceparent() == ""

    def test_use_context_none_is_noop(self):
        with trace.use_context(None) as scoped:
            assert scoped is None
            assert trace.current_context() is None


def _by_name(events):
    spans = {}
    for event in events:
        if "span" in event:
            spans.setdefault(event["span"], []).append(event)
    return spans


class TestStitchedServeTrace:
    def test_one_request_is_one_coherent_tree(self, model_900):
        context = request_context()
        with observed(sink=MemorySink()) as registry:
            service = InferenceService(
                policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
                model_factory=lambda config: model_900,
                registry=registry)
            request = EstimateRequest(
                sensor_id="s0", sequence=0, time=0.0,
                phi1=0.5, phi2=0.4, config=SensorConfig())

            async def go():
                with trace.use_context(context):
                    return await service.estimate(request)

            asyncio.run(go())
            events = registry.sink.events
        assert {event["trace_id"] for event in events} \
            == {context.trace_id}
        spans = _by_name(events)
        for name in ("serve.estimate", "serve.session", "serve.flush",
                     "estimator.invert_batch"):
            assert name in spans, name
        estimate = spans["serve.estimate"][0]
        session = spans["serve.session"][0]
        flush = spans["serve.flush"][0]
        invert = spans["estimator.invert_batch"][0]
        assert estimate["parent_span_id"] == context.span_id
        assert session["parent_span_id"] == estimate["span_id"]
        assert flush["parent_span_id"] == estimate["span_id"]
        assert invert["parent_span_id"] == flush["span_id"]
        assert flush["links"] == [{"trace_id": context.trace_id,
                                   "span_id": estimate["span_id"]}]

    def test_batch_flush_links_every_member(self, model_900):
        with observed(sink=MemorySink()) as registry:
            service = InferenceService(
                policy=BatchPolicy(max_batch=3, max_delay_s=0.05),
                model_factory=lambda config: model_900,
                registry=registry)
            config = SensorConfig()
            requests = [
                EstimateRequest(sensor_id=f"s{i}", sequence=0, time=0.0,
                                phi1=0.5, phi2=0.4, config=config)
                for i in range(3)
            ]
            asyncio.run(service.estimate_many(requests))
            events = registry.sink.events
        spans = _by_name(events)
        linked = {link["span_id"]
                  for flush in spans["serve.flush"]
                  for link in flush.get("links", ())}
        members = {event["span_id"] for event in spans["serve.estimate"]}
        assert linked == members
        assert len({event["trace_id"]
                    for event in spans["serve.estimate"]}) == 3


def _traced_trial(value):
    from repro.obs.registry import active

    obs = active()
    if obs is not None:
        obs.counter("trial.calls").increment()
        with obs.span("trial.work", {"value": value}):
            pass
    return value * 2


class TestCampaignTrace:
    def test_serial_trials_nest_under_campaign_run(self):
        from repro.experiments.parallel import CampaignExecutor

        with observed(sink=MemorySink()) as registry:
            execution = CampaignExecutor(workers=1).run(
                _traced_trial, [(1,), (2,)])
            events = registry.sink.events
        assert execution.results == [2, 4]
        spans = _by_name(events)
        run = spans["campaign.run"][0]
        assert len(spans["campaign.trial"]) == 2
        for trial in spans["campaign.trial"]:
            assert trial["trace_id"] == run["trace_id"]
            assert trial["parent_span_id"] == run["span_id"]
        for work in spans["trial.work"]:
            assert work["trace_id"] == run["trace_id"]

    def test_worker_trials_stitch_across_processes(self):
        from repro.experiments.parallel import CampaignExecutor

        with observed(sink=MemorySink()) as registry:
            execution = CampaignExecutor(workers=2).run(
                _traced_trial, [(1,), (2,), (3,), (4,)])
            events = registry.sink.events
        assert execution.results == [2, 4, 6, 8]
        if execution.mode != "parallel":
            pytest.skip(f"pool unavailable: {execution.fallback_reason}")
        spans = _by_name(events)
        run = spans["campaign.run"][0]
        assert len(spans["campaign.trial"]) == 4
        for trial in spans["campaign.trial"]:
            assert trial["trace_id"] == run["trace_id"]
            assert trial["parent_span_id"] == run["span_id"]
        span_ids = [event["span_id"] for event in events
                    if "span_id" in event]
        assert len(span_ids) == len(set(span_ids))


class TestWaterfall:
    def test_renders_nested_offsets(self):
        events = [
            {"span": "root", "trace_id": "a" * 32, "span_id": "1" * 16,
             "parent_span_id": None, "start_unix": 100.0,
             "duration_s": 0.01, "status": "ok"},
            {"span": "child", "trace_id": "a" * 32, "span_id": "2" * 16,
             "parent_span_id": "1" * 16, "start_unix": 100.002,
             "duration_s": 0.005, "status": "error",
             "error": "ValueError", "error_message": "boom",
             "batch_size": 2},
        ]
        rendered = render_waterfall(events, "aaaa")
        lines = rendered.splitlines()
        assert lines[0].startswith("trace " + "a" * 32)
        assert "root" in lines[1]
        assert lines[2].startswith("    ") or "  child" in lines[2]
        assert "!ValueError: boom" in lines[2]
        assert "batch_size=2" in lines[2]

    def test_no_match_renders_empty(self):
        assert render_waterfall([], "abc") == ""
        assert render_waterfall(
            [{"span": "s", "span_id": "1" * 16,
              "trace_id": "b" * 32}], "a") == ""

    def test_orphan_parents_become_roots(self):
        events = [{"span": "lonely", "trace_id": "c" * 32,
                   "span_id": "3" * 16, "parent_span_id": "9" * 16,
                   "start_unix": 1.0, "duration_s": 0.001,
                   "status": "ok"}]
        rendered = render_waterfall(events, "c" * 32)
        assert "lonely" in rendered
