"""Example-script health checks.

The examples are exercised manually (they build full-resolution
transducers and take tens of seconds each); these tests keep them from
rotting: every script must parse, compile, carry a usable docstring and
a main() guard, and import only names the library actually exports.
"""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExamples:
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "c.pyc"),
                           doraise=True)

    def test_has_docstring(self, path):
        tree = ast.parse(path.read_text())
        docstring = ast.get_docstring(tree)
        assert docstring and "Run:" in docstring

    def test_has_main_guard(self, path):
        assert 'if __name__ == "__main__":' in path.read_text()

    def test_imports_resolve(self, path):
        """Every repro import in the example must exist."""
        import importlib
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} missing")


def test_example_count():
    """The deliverable: at least three runnable examples."""
    assert len(EXAMPLES) >= 3
