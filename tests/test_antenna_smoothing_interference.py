"""Antenna, track-smoothing and interference-excision tests."""

import numpy as np
import pytest

from repro.channel.interference import (
    BurstyInterferer,
    corrupt_stream,
    excise_interference,
)
from repro.channel.propagation import BackscatterLink
from repro.core.smoothing import TrackSmoother
from repro.core.tracking import TrackedSample
from repro.errors import ChannelError, ConfigurationError
from repro.experiments.scenarios import fast_transducer
from repro.reader.sounder import FrameLevelSounder
from repro.reader.waveform import OFDMSounderConfig
from repro.rf.antenna import (
    HALF_WAVE_DIPOLE,
    ISOTROPIC,
    PATCH_6DBI,
    Antenna,
    OrientedLinkBudget,
    polarization_loss_db,
)
from repro.sensor.tag import TagState, WiForceTag


class TestAntenna:
    def test_isotropic_flat(self):
        assert ISOTROPIC.gain_dbi(0.0) == ISOTROPIC.gain_dbi(1.2)

    def test_boresight_is_peak(self):
        for theta in (0.3, 0.8, 1.4, 2.5):
            assert PATCH_6DBI.gain_dbi(theta) <= PATCH_6DBI.gain_dbi(0.0)

    def test_front_to_back_floor(self):
        gain_behind = PATCH_6DBI.gain_dbi(np.pi)
        assert gain_behind == pytest.approx(
            PATCH_6DBI.boresight_gain_dbi - PATCH_6DBI.front_to_back_db)

    def test_dipole_gain(self):
        assert HALF_WAVE_DIPOLE.gain_dbi(0.0) == pytest.approx(2.15)

    def test_amplitude_matches_gain(self):
        gain = PATCH_6DBI.gain_dbi(0.5)
        assert PATCH_6DBI.amplitude(0.5) == pytest.approx(10 ** (gain / 20))

    def test_rejects_negative_exponent(self):
        with pytest.raises(ConfigurationError):
            Antenna(pattern_exponent=-1.0)


class TestPolarization:
    def test_aligned_lossless(self):
        assert polarization_loss_db(0.0) == pytest.approx(0.0, abs=0.02)

    def test_45_degrees_is_3db(self):
        assert polarization_loss_db(np.pi / 4) == pytest.approx(3.0,
                                                                abs=0.1)

    def test_orthogonal_limited_by_isolation(self):
        loss = polarization_loss_db(np.pi / 2,
                                    cross_pol_isolation_db=25.0)
        assert loss == pytest.approx(25.0, abs=0.5)

    def test_rejects_bad_isolation(self):
        with pytest.raises(ConfigurationError):
            polarization_loss_db(0.1, cross_pol_isolation_db=0.0)


class TestOrientedBudget:
    def test_aligned_no_penalty(self):
        budget = OrientedLinkBudget()
        assert budget.two_way_penalty_db() == pytest.approx(0.0, abs=0.05)

    def test_rotation_costs(self):
        rotated = OrientedLinkBudget(tag_rotation=np.pi / 4)
        assert rotated.two_way_penalty_db() == pytest.approx(6.0, abs=0.3)

    def test_tilt_costs(self):
        tilted = OrientedLinkBudget(tag_tilt=1.0)
        assert tilted.two_way_penalty_db() > 1.0

    def test_penalty_feeds_link_budget(self):
        """The orientation penalty plugs into the existing machinery."""
        penalty = OrientedLinkBudget(
            tag_rotation=np.pi / 4).two_way_penalty_db()
        aligned = BackscatterLink()
        rotated = BackscatterLink(tag_blockage_db=penalty / 2.0)
        delta = (rotated.two_way_loss_db(900e6)
                 - aligned.two_way_loss_db(900e6))
        assert delta == pytest.approx(penalty, abs=0.1)


def make_track(forces, noise, rng, location=0.04):
    samples = []
    for index, force in enumerate(forces):
        touched = force > 0
        samples.append(TrackedSample(
            time=index * 0.036,
            phi1=0.0, phi2=0.0, touched=touched,
            force=max(0.0, force + rng.normal(0, noise)) if touched else 0.0,
            location=location if touched else 0.0))
    return samples


class TestTrackSmoother:
    def test_reduces_jitter(self, rng):
        truth = [0.0] * 3 + [4.0] * 40
        raw = make_track(truth, noise=0.4, rng=rng)
        smoothed = TrackSmoother().smooth(raw)
        raw_jitter = np.std(np.diff([s.force for s in raw if s.touched]))
        smooth_jitter = TrackSmoother.track_noise(smoothed)
        assert smooth_jitter < 0.6 * raw_jitter

    def test_tracks_ramps(self, rng):
        truth = [0.0] * 3 + list(np.linspace(1.0, 6.0, 30))
        raw = make_track(truth, noise=0.2, rng=rng)
        smoothed = TrackSmoother().smooth(raw)
        final = smoothed[-1]
        assert final.force == pytest.approx(6.0, abs=0.6)
        assert final.force_rate > 0.0

    def test_untouched_resets(self, rng):
        truth = [0.0] * 3 + [4.0] * 10 + [0.0] * 3 + [2.0] * 10
        raw = make_track(truth, noise=0.1, rng=rng)
        smoothed = TrackSmoother().smooth(raw)
        assert not smoothed[14].touched
        # The second touch converges to 2 N, not dragged from 4 N.
        assert smoothed[-1].force == pytest.approx(2.0, abs=0.4)

    def test_never_negative(self, rng):
        truth = [0.0] * 3 + [0.3] * 20
        raw = make_track(truth, noise=0.5, rng=rng)
        smoothed = TrackSmoother().smooth(raw)
        assert all(s.force >= 0.0 for s in smoothed)

    def test_empty_track(self):
        assert TrackSmoother().smooth([]) == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TrackSmoother(force_process_noise=0.0)
        with pytest.raises(ConfigurationError):
            TrackSmoother(location_smoothing=0.0)


@pytest.fixture(scope="module")
def quiet_stream():
    config = OFDMSounderConfig(carrier_frequency=900e6)
    tag = WiForceTag(fast_transducer())
    sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                rng=np.random.default_rng(8))
    return sounder.capture(TagState(), 625)


class TestInterference:
    def test_hit_mask_duty(self, rng):
        interferer = BurstyInterferer(duty=0.1, burst_frames=4.0)
        mask = interferer.hit_mask(200_000, rng)
        assert mask.mean() == pytest.approx(0.1, abs=0.03)

    def test_zero_duty_no_hits(self, rng):
        interferer = BurstyInterferer(duty=0.0)
        assert not interferer.hit_mask(1000, rng).any()

    def test_hits_are_bursty(self, rng):
        interferer = BurstyInterferer(duty=0.1, burst_frames=5.0)
        mask = interferer.hit_mask(50_000, rng)
        transitions = np.count_nonzero(np.diff(mask.astype(int)))
        hits = mask.sum()
        # Far fewer on/off transitions than hits = contiguous bursts.
        assert transitions < 0.8 * hits

    def test_corrupt_stream_changes_hit_frames_only(self, quiet_stream,
                                                    rng):
        interferer = BurstyInterferer(duty=0.05)
        corrupted, mask = corrupt_stream(quiet_stream, interferer, rng)
        unchanged = ~mask
        np.testing.assert_array_equal(
            corrupted.estimates[unchanged],
            quiet_stream.estimates[unchanged])
        if mask.any():
            assert not np.allclose(corrupted.estimates[mask],
                                   quiet_stream.estimates[mask])

    def test_excision_finds_hits(self, quiet_stream, rng):
        interferer = BurstyInterferer(duty=0.05,
                                      interference_to_signal_db=0.0)
        corrupted, mask = corrupt_stream(quiet_stream, interferer, rng)
        _, flagged = excise_interference(corrupted)
        hits = np.flatnonzero(mask)
        found = np.flatnonzero(flagged)
        recall = np.isin(hits, found).mean() if hits.size else 1.0
        assert recall > 0.9

    def test_excision_restores_estimates(self, quiet_stream, rng):
        interferer = BurstyInterferer(duty=0.05,
                                      interference_to_signal_db=0.0)
        corrupted, mask = corrupt_stream(quiet_stream, interferer, rng)
        cleaned, _ = excise_interference(corrupted)
        error_before = np.abs(corrupted.estimates
                              - quiet_stream.estimates).sum()
        error_after = np.abs(cleaned.estimates
                             - quiet_stream.estimates).sum()
        assert error_after < 0.2 * error_before

    def test_clean_stream_untouched(self, quiet_stream):
        cleaned, flagged = excise_interference(quiet_stream)
        assert flagged.mean() < 0.02

    def test_rejects_bad_duty(self):
        with pytest.raises(ChannelError):
            BurstyInterferer(duty=1.0)

    def test_rejects_bad_threshold(self, quiet_stream):
        with pytest.raises(ChannelError):
            excise_interference(quiet_stream, threshold_factor=0.0)

    def test_rejects_bad_percentile(self, quiet_stream):
        with pytest.raises(ChannelError):
            excise_interference(quiet_stream, reference_percentile=10.0)
