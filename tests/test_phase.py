"""Differential-phase extraction tests (paper Eqns. 4-5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.harmonics import HarmonicMatrix
from repro.core.phase import (
    differential_phase,
    harmonic_snr_db,
    per_subcarrier_phases,
    phase_stability_deg,
    phase_trajectory,
)
from repro.errors import EstimationError


def vector(phase, k=8, amplitude=1.0):
    subcarrier_phases = np.linspace(0.0, 1.0, k)  # air-propagation slope
    return amplitude * np.exp(1j * (subcarrier_phases + phase))


class TestDifferentialPhase:
    def test_recovers_common_rotation(self):
        assert differential_phase(vector(0.0), vector(0.4)) == pytest.approx(
            0.4)

    def test_air_phase_cancels(self):
        """The subcarrier-dependent propagation phase must drop out."""
        reference = vector(0.0)
        rotated = vector(0.3)
        # Multiply both by an arbitrary per-subcarrier channel.
        channel = np.exp(1j * np.linspace(-2.0, 2.0, 8)) * 0.01
        assert differential_phase(reference * channel,
                                  rotated * channel) == pytest.approx(0.3)

    def test_wraps_correctly(self):
        assert differential_phase(vector(3.0), vector(-3.0)) == pytest.approx(
            2 * np.pi - 6.0, abs=1e-9)

    def test_averaging_beats_single_subcarrier(self):
        rng = np.random.default_rng(7)
        errors_single = []
        errors_avg = []
        for _ in range(200):
            noise = 0.2 * (rng.normal(size=8) + 1j * rng.normal(size=8))
            observed = vector(0.3) + noise
            errors_avg.append(differential_phase(vector(0.0), observed) - 0.3)
            errors_single.append(
                per_subcarrier_phases(vector(0.0), observed)[0] - 0.3)
        assert np.std(errors_avg) < 0.6 * np.std(errors_single)

    def test_weighting_by_power(self):
        # A dead subcarrier should not corrupt the average.
        reference = vector(0.0)
        observed = vector(0.5)
        reference[3] = 1e-12
        observed[3] = -1e-12  # opposite phase but negligible power
        assert differential_phase(reference, observed) == pytest.approx(
            0.5, abs=1e-3)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(EstimationError):
            differential_phase(vector(0.0), vector(0.0, k=4))

    def test_rejects_zero_energy(self):
        zeros = np.zeros(8, dtype=complex)
        with pytest.raises(EstimationError):
            differential_phase(zeros, zeros)

    @settings(max_examples=40, deadline=None)
    @given(phase=st.floats(min_value=-3.0, max_value=3.0))
    def test_exact_for_noiseless_rotation(self, phase):
        assert differential_phase(vector(0.2), vector(0.2 + phase)
                                  ) == pytest.approx(phase, abs=1e-9)


class TestPhaseTrajectory:
    def make_matrix(self, phases):
        values = np.stack([vector(p) for p in phases])
        return HarmonicMatrix(tone=1e3, values=values,
                              group_times=np.arange(len(phases)) * 0.036)

    def test_relative_to_reference(self):
        matrix = self.make_matrix([0.1, 0.3, 0.6])
        trajectory = phase_trajectory(matrix)
        np.testing.assert_allclose(trajectory, [0.0, 0.2, 0.5], atol=1e-9)

    def test_unwraps_beyond_pi(self):
        phases = np.linspace(0.0, 3 * np.pi, 13)
        trajectory = phase_trajectory(self.make_matrix(phases))
        np.testing.assert_allclose(trajectory, phases, atol=1e-9)

    def test_reference_group_choice(self):
        matrix = self.make_matrix([0.1, 0.3, 0.6])
        trajectory = phase_trajectory(matrix, reference_group=1)
        assert trajectory[1] == pytest.approx(0.0)
        assert trajectory[2] == pytest.approx(0.3)

    def test_rejects_bad_reference(self):
        matrix = self.make_matrix([0.1, 0.3])
        with pytest.raises(EstimationError):
            phase_trajectory(matrix, reference_group=5)


class TestStabilityAndSnr:
    def test_constant_phase_is_stable(self):
        values = np.stack([vector(0.5)] * 6)
        matrix = HarmonicMatrix(1e3, values, np.arange(6) * 0.036)
        assert phase_stability_deg(matrix) == pytest.approx(0.0, abs=1e-9)

    def test_noisy_phase_less_stable(self, rng):
        noisy = np.stack([vector(0.5) + 0.1 * rng.normal(size=8)
                          for _ in range(12)])
        matrix = HarmonicMatrix(1e3, noisy, np.arange(12) * 0.036)
        assert phase_stability_deg(matrix) > 0.1

    def test_stability_needs_two_groups(self):
        matrix = HarmonicMatrix(1e3, vector(0.1)[None, :], np.zeros(1))
        with pytest.raises(EstimationError):
            phase_stability_deg(matrix)

    def test_snr_infinite_for_clean(self):
        values = np.stack([vector(0.5)] * 4)
        matrix = HarmonicMatrix(1e3, values, np.arange(4) * 0.036)
        assert harmonic_snr_db(matrix) == float("inf")

    def test_snr_finite_for_noisy(self, rng):
        noisy = np.stack([vector(0.5) + 0.05 * rng.normal(size=8)
                          for _ in range(12)])
        matrix = HarmonicMatrix(1e3, noisy, np.arange(12) * 0.036)
        snr = harmonic_snr_db(matrix)
        assert 10.0 < snr < 60.0
