"""Energy-harvesting budget and ERT baseline tests."""

import numpy as np
import pytest

from repro.baselines.ert import ERTStrip
from repro.errors import ConfigurationError
from repro.sensor.harvester import EnergyHarvester, Rectifier
from repro.sensor.power import wiforce_power_budget


class TestRectifier:
    def test_efficiency_zero_at_zero_power(self):
        assert Rectifier().efficiency(0.0) == 0.0

    def test_efficiency_monotone(self):
        rectifier = Rectifier()
        powers = [1e-7, 1e-6, 1e-5, 1e-4]
        efficiencies = [rectifier.efficiency(p) for p in powers]
        assert all(b > a for a, b in zip(efficiencies, efficiencies[1:]))

    def test_efficiency_bounded_by_peak(self):
        rectifier = Rectifier(peak_efficiency=0.45)
        assert rectifier.efficiency(1.0) <= 0.45

    def test_half_point(self):
        rectifier = Rectifier(peak_efficiency=0.4,
                              half_efficiency_dbm=-10.0)
        assert rectifier.efficiency(1e-4) == pytest.approx(0.2, abs=1e-3)

    def test_rejects_bad_peak(self):
        with pytest.raises(ConfigurationError):
            Rectifier(peak_efficiency=0.0)


class TestEnergyHarvester:
    def test_incident_power_inverse_square(self):
        harvester = EnergyHarvester()
        near = harvester.incident_power(10.0, 6.0, 0.5, 900e6)
        far = harvester.incident_power(10.0, 6.0, 1.0, 900e6)
        assert near / far == pytest.approx(4.0, rel=1e-6)

    def test_battery_free_feasible_at_paper_geometry(self):
        """Section 6's claim: the sub-uW tag can run off the reader's
        own 10 dBm excitation at the Fig. 12 half-metre geometry."""
        harvester = EnergyHarvester()
        report = harvester.report(wiforce_power_budget(), 10.0, 6.0, 0.5,
                                  900e6)
        assert report.feasible
        assert report.margin > 2.0

    def test_infeasible_far_away(self):
        harvester = EnergyHarvester()
        report = harvester.report(wiforce_power_budget(), 10.0, 6.0, 40.0,
                                  900e6)
        assert not report.feasible

    def test_break_even_range_bracketed(self):
        harvester = EnergyHarvester()
        budget = wiforce_power_budget()
        rng = harvester.break_even_range(budget, 10.0, 6.0, 900e6)
        assert 0.5 < rng < 50.0
        at_range = harvester.report(budget, 10.0, 6.0, rng, 900e6)
        assert at_range.margin == pytest.approx(1.0, rel=0.05)

    def test_more_tx_power_more_range(self):
        harvester = EnergyHarvester()
        budget = wiforce_power_budget()
        low = harvester.break_even_range(budget, 10.0, 6.0, 900e6)
        high = harvester.break_even_range(budget, 20.0, 6.0, 900e6)
        assert high > low


class TestERTStrip:
    def test_wire_count_is_electrode_count(self, rng):
        strip = ERTStrip(electrode_count=8, rng=rng)
        assert strip.wire_count == 8

    def test_reconstructs_location(self, rng):
        strip = ERTStrip(rng=rng)
        reading = strip.read(4.0, 0.040)
        assert reading.location == pytest.approx(0.040, abs=4e-3)

    def test_reconstructs_force(self, rng):
        strip = ERTStrip(rng=rng)
        reading = strip.read(4.0, 0.040)
        assert reading.force == pytest.approx(4.0, abs=1.0)

    def test_press_lowers_resistance_locally(self, rng):
        strip = ERTStrip(rng=rng)
        unpressed = strip._segment_resistances(0.0, 0.0)
        pressed = strip._segment_resistances(5.0, 0.040)
        centre = np.argmin(np.abs(strip._x - 0.040))
        assert pressed[centre] < unpressed[centre]
        assert pressed[0] == pytest.approx(unpressed[0], rel=1e-3)

    def test_localization_coarser_than_wiforce(self, rng):
        """ERT with 8 electrodes localizes at ~mm but needs 8 wires;
        WiForce needs zero. The accuracy gap is modest, the wiring gap
        is the point (paper section 2)."""
        strip = ERTStrip(rng=rng)
        errors = []
        for location in np.linspace(0.015, 0.065, 9):
            reading = strip.read(3.0, float(location))
            errors.append(abs(reading.location - location))
        assert np.median(errors) < 5e-3
        assert strip.wire_count >= 3

    def test_rejects_too_few_electrodes(self, rng):
        with pytest.raises(ConfigurationError):
            ERTStrip(electrode_count=2, rng=rng)

    def test_rejects_negative_force(self, rng):
        with pytest.raises(ConfigurationError):
            ERTStrip(rng=rng).measure(-1.0, 0.04)

    def test_rejects_bad_potentials_shape(self, rng):
        strip = ERTStrip(rng=rng)
        with pytest.raises(ConfigurationError):
            strip.reconstruct(np.zeros(3))
