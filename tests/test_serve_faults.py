"""Serve-path degradation under injected faults.

Covers the graceful-degradation contracts: transient backpressure is
retried inside the service (the session survives and the response says
``"recovered"``), injected stalls mark responses ``"degraded"``, an
open circuit breaker reroutes to the scalar path instead of failing,
and a streak of degraded results quarantines and then re-warms the
session.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.estimator import ForceLocationEstimator
from repro.errors import QueueFullError
from repro.faults import CircuitBreaker, FaultPlan, FaultSpec, RetryPolicy, inject
from repro.obs.registry import observed
from repro.serve import (
    BatchPolicy,
    EstimateRequest,
    InferenceService,
    SensorConfig,
)
from repro.serve.scheduler import MicroBatchScheduler
from repro.serve.session import SensorSession


@pytest.fixture(scope="module")
def estimator(model_900):
    return ForceLocationEstimator(model_900)


@pytest.fixture(scope="module")
def press_phases(model_900):
    import numpy as np

    forces = np.array([1.0, 2.5, 4.0, 5.5])
    locations = np.linspace(0.022, 0.058, forces.size)
    phi1, phi2 = model_900.predict_batch(forces, locations)
    return list(zip(phi1.tolist(), phi2.tolist()))


class _ExplodingBatcher:
    """Estimator facade whose batch path always raises."""

    def __init__(self, estimator):
        self._estimator = estimator
        self.model = estimator.model

    def invert_batch(self, phi1, phi2, location_hint=None):
        raise RuntimeError("batcher down")

    def invert(self, phi1, phi2, location_hint=None):
        return self._estimator.invert(phi1, phi2,
                                      location_hint=location_hint)


def _service(model, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch=8,
                                            max_delay_s=0.001))
    return InferenceService(model_factory=lambda config: model, **kwargs)


def _request(phi1, phi2, sequence=0, sensor="s-0", time=None):
    return EstimateRequest(sensor_id=sensor, sequence=sequence,
                           time=(0.01 * sequence if time is None
                                 else time),
                           phi1=phi1, phi2=phi2, config=SensorConfig())


def _plan(*specs, seed=0):
    return FaultPlan(name="test", seed=seed, specs=tuple(specs))


class TestBackpressureRetry:
    def test_transient_reject_recovers_without_killing_session(
            self, model_900, press_phases):
        """Satellite regression: a momentarily full queue (here an
        injected rejection) is absorbed by the bounded retry budget —
        the caller sees a successful ``"recovered"`` response and the
        session keeps serving."""
        service = _service(model_900)
        plan = _plan(FaultSpec(site="serve.scheduler", kind="reject",
                               schedule=(0,)))
        phi1, phi2 = press_phases[0]
        with observed() as registry:
            with inject(plan):
                first = asyncio.run(service.estimate(
                    _request(phi1, phi2)))
        assert first.quality == "recovered"
        assert first.estimate.touched
        # Session is intact: the next (unarmed) request is plain ok.
        follow = asyncio.run(service.estimate(
            _request(phi1, phi2, sequence=1)))
        assert follow.quality == "ok"
        session = service.sessions.get("s-0")
        assert not session.quarantined
        assert len(session.samples) == 2
        counters = registry.snapshot()["counters"]
        assert counters["fault.retries.serve.submit"] == 1

    def test_exhausted_retry_budget_sheds_as_queue_full(
            self, model_900, press_phases):
        service = _service(model_900,
                           retry_policy=RetryPolicy(
                               attempts=2, base_delay_s=0.0001))
        plan = _plan(FaultSpec(site="serve.scheduler", kind="reject",
                               probability=1.0))
        phi1, phi2 = press_phases[0]
        with inject(plan):
            with pytest.raises(QueueFullError):
                asyncio.run(service.estimate(_request(phi1, phi2)))
        # Shed, not crashed: the service still serves afterwards.
        response = asyncio.run(service.estimate(
            _request(phi1, phi2, sequence=1)))
        assert response.quality == "ok"


class TestStallDegradation:
    def test_stall_marks_response_degraded(self, model_900, press_phases):
        service = _service(model_900)
        plan = _plan(FaultSpec(site="serve.scheduler", kind="stall",
                               schedule=(0,), magnitude=0.001))
        phi1, phi2 = press_phases[1]
        with inject(plan):
            response = asyncio.run(service.estimate(
                _request(phi1, phi2)))
        assert response.quality == "degraded"
        # Degraded responses still carry a real estimate.
        assert response.estimate.touched

    def test_unarmed_service_reports_ok(self, model_900, press_phases):
        service = _service(model_900)
        phi1, phi2 = press_phases[1]
        response = asyncio.run(service.estimate(_request(phi1, phi2)))
        assert response.quality == "ok"


class TestCircuitBreaker:
    def test_open_breaker_serves_scalar_degraded(self, estimator,
                                                 press_phases):
        """Once the batch path has failed enough, the breaker opens and
        requests go straight to the scalar path (flagged degraded)
        instead of re-attempting the broken batcher."""
        breaker = CircuitBreaker(failure_threshold=1,
                                 recovery_timeout_s=60.0)
        scheduler = MicroBatchScheduler(
            BatchPolicy(max_batch=4, max_delay_s=0.0005),
            breaker=breaker)
        exploding = _ExplodingBatcher(estimator)

        async def drive():
            first = await scheduler.submit(exploding,
                                           *press_phases[0])
            second = await scheduler.submit(exploding,
                                            *press_phases[1])
            return first, second

        first, second = asyncio.run(drive())
        # First request rode the batch-failure fallback; the failure
        # opened the breaker, so the second never touched the batcher.
        assert first.quality == "degraded"
        assert second.quality == "degraded"
        assert breaker.state == "open"
        telemetry = scheduler.telemetry.snapshot()["counters"]
        assert telemetry["serve.breaker_scalar"] >= 1

    def test_breaker_closes_after_successful_probe(self, estimator,
                                                   press_phases):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(failure_threshold=1,
                                 recovery_timeout_s=1.0,
                                 clock=lambda: clock["t"])
        scheduler = MicroBatchScheduler(
            BatchPolicy(max_batch=4, max_delay_s=0.0005),
            breaker=breaker)
        asyncio.run(scheduler.submit(_ExplodingBatcher(estimator),
                                     *press_phases[0]))
        assert breaker.state == "open"
        clock["t"] = 2.0  # past the cooldown: half-open probe allowed
        result = asyncio.run(scheduler.submit(estimator,
                                              *press_phases[1]))
        assert result.quality == "ok"
        assert breaker.state == "closed"


class TestQuarantine:
    def _session(self, estimator, **kwargs):
        return SensorSession("q-0", SensorConfig(), estimator, **kwargs)

    def test_streak_quarantines_and_ok_lifts(self, estimator):
        session = self._session(estimator, quarantine_after=2)
        session.note_quality("degraded")
        assert not session.quarantined
        session.note_quality("degraded")
        assert session.quarantined
        assert session.quarantines == 1
        # baseline_samples=0 means the baseline is always ready, so a
        # clean result lifts the quarantine immediately.
        session.note_quality("ok")
        assert not session.quarantined

    def test_quarantine_discards_baseline_and_rewarns(self, estimator):
        session = self._session(estimator, baseline_samples=2,
                                quarantine_after=2)
        session.correct(0.0, 0.1, 0.2)
        session.correct(0.1, 0.1, 0.2)
        assert session.baseline_ready
        session.note_quality("degraded")
        session.note_quality("degraded")
        assert session.quarantined
        assert not session.baseline_ready
        # Re-warmup: two more samples refit the baseline and lift the
        # quarantine from inside _fit_baseline.
        session.correct(0.2, 0.1, 0.2)
        session.correct(0.3, 0.1, 0.2)
        assert session.baseline_ready
        assert not session.quarantined

    def test_service_streak_flags_quarantined_responses(
            self, model_900, press_phases):
        service = _service(model_900)
        plan = _plan(FaultSpec(site="serve.scheduler", kind="stall",
                               schedule=tuple(range(8)),
                               magnitude=0.0005))
        phi1, phi2 = press_phases[2]
        with inject(plan):
            responses = [
                asyncio.run(service.estimate(
                    _request(phi1, phi2, sequence=i)))
                for i in range(6)
            ]
        qualities = [r.quality for r in responses]
        assert qualities[:4] == ["degraded"] * 4
        assert "quarantined" in qualities[4:]
        assert service.sessions.get("s-0").quarantines == 1
