"""Experiment metrics and fingertip-profile tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.fingertip import FingertipProfile
from repro.experiments.metrics import (
    cdf_at,
    empirical_cdf,
    median_absolute_error,
    percentile_absolute_error,
)


class TestMetrics:
    def test_cdf_sorted_and_normalised(self):
        values, probabilities = empirical_cdf([3.0, -1.0, 2.0])
        np.testing.assert_allclose(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(probabilities, [1 / 3, 2 / 3, 1.0])

    def test_cdf_uses_absolute_errors(self):
        values, _ = empirical_cdf([-5.0])
        assert values[0] == 5.0

    def test_median(self):
        assert median_absolute_error([1.0, -2.0, 3.0]) == 2.0

    def test_percentile(self):
        errors = np.arange(1, 101, dtype=float)
        assert percentile_absolute_error(errors, 90.0) == pytest.approx(90.1)

    def test_cdf_at(self):
        assert cdf_at([1.0, 2.0, 3.0, 4.0], 2.5) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf([])
        with pytest.raises(ConfigurationError):
            median_absolute_error([])

    def test_bad_percentile_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile_absolute_error([1.0], 150.0)


class TestFingertipProfile:
    def test_sample_count(self, rng):
        profile = FingertipProfile(levels=(1.0, 2.0), samples_per_level=5,
                                   rng=rng)
        assert len(profile.generate()) == 10

    def test_levels_visited_in_order(self, rng):
        profile = FingertipProfile(rng=rng)
        presses = profile.generate()
        indices = [press.level_index for press in presses]
        assert indices == sorted(indices)

    def test_forces_near_targets(self, rng):
        profile = FingertipProfile(levels=(2.0,), samples_per_level=50,
                                   tremor_std=0.1, rng=rng)
        forces = [press.state.force for press in profile.generate()]
        assert np.mean(forces) == pytest.approx(2.0, abs=0.15)

    def test_location_jitter_bounded(self, rng):
        profile = FingertipProfile(placement_std=1e-3, rng=rng)
        locations = [press.state.location for press in profile.generate()]
        assert np.std(locations) < 4e-3

    def test_forces_always_positive(self, rng):
        profile = FingertipProfile(levels=(0.3,), tremor_std=1.0, rng=rng)
        assert all(press.state.force > 0.0 for press in profile.generate())

    def test_rejects_bad_levels(self, rng):
        with pytest.raises(ConfigurationError):
            FingertipProfile(levels=(), rng=rng)
        with pytest.raises(ConfigurationError):
            FingertipProfile(levels=(-1.0,), rng=rng)

    def test_rejects_bad_samples(self, rng):
        with pytest.raises(ConfigurationError):
            FingertipProfile(samples_per_level=0, rng=rng)
