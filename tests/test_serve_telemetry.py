"""Telemetry instruments: counters, histograms, spans, snapshots.

These instruments now live in :mod:`repro.obs.instruments`;
``repro.serve.telemetry`` is a compatibility shim.  The tests import
through the shim on purpose — existing serve code must keep working.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.serve.telemetry import (
    BATCH_BUCKETS,
    Histogram,
    MemorySink,
    Telemetry,
)


class TestCounter:
    def test_increments(self):
        telemetry = Telemetry()
        counter = telemetry.counter("requests")
        counter.increment()
        counter.increment(4)
        assert telemetry.counter("requests").value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ObservabilityError):
            Telemetry().counter("x").increment(-1)


class TestHistogram:
    def test_observe_statistics(self):
        histogram = Histogram("latency", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 10.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.mean == pytest.approx(3.75)
        assert histogram.minimum == 0.5
        assert histogram.maximum == 10.0

    def test_quantile_bounds(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        for _ in range(100):
            histogram.observe(1.5)
        quantile = histogram.quantile(0.5)
        assert 1.0 <= quantile <= 2.0
        assert histogram.quantile(0.0) <= histogram.quantile(1.0)

    def test_empty_quantile_is_nan(self):
        """Prometheus semantics: no observations means no quantile."""
        assert math.isnan(Histogram("h", bounds=(1.0,)).quantile(0.99))
        assert math.isnan(Histogram("h", bounds=(1.0,)).quantile(0.0))

    def test_overflow_quantile_clamps_to_largest_bound(self):
        """All mass beyond the last bound clamps, never invents values."""
        histogram = Histogram("h", bounds=(1.0, 2.0))
        for _ in range(10):
            histogram.observe(100.0)
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(0.99) == 2.0

    def test_mixed_overflow_quantile(self):
        """Quantiles below the overflow mass still use finite buckets."""
        histogram = Histogram("h", bounds=(1.0, 2.0))
        for _ in range(9):
            histogram.observe(0.5)
        histogram.observe(50.0)
        # Median interpolates inside the first finite bucket...
        assert 0.0 < histogram.quantile(0.5) <= 1.0
        # ...while the tail that lands in overflow clamps to the bound.
        assert histogram.quantile(0.99) == 2.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("bad", bounds=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("empty", bounds=())

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", bounds=(1.0,)).quantile(1.5)


class TestSpan:
    def test_span_emits_to_sink(self):
        sink = MemorySink()
        telemetry = Telemetry(sink)
        with telemetry.span("flush", {"batch_size": 8}) as span:
            span.set("path", "batched")
        assert len(sink.events) == 1
        event = sink.events[0]
        assert event["span"] == "flush"
        assert event["batch_size"] == 8
        assert event["path"] == "batched"
        assert event["error"] is None
        assert event["duration_s"] >= 0.0

    def test_span_records_error(self):
        sink = MemorySink()
        telemetry = Telemetry(sink)
        with pytest.raises(RuntimeError):
            with telemetry.span("flush"):
                raise RuntimeError("boom")
        assert sink.events[0]["error"] == "RuntimeError"

    def test_span_duration_lands_in_histogram(self):
        """Spans double as latency histograms in the snapshot."""
        telemetry = Telemetry()
        with telemetry.span("flush"):
            pass
        snapshot = telemetry.snapshot()
        assert snapshot["histograms"]["span.flush.seconds"]["count"] == 1


class TestSnapshot:
    def test_snapshot_is_json_ready(self):
        telemetry = Telemetry()
        telemetry.counter("requests").increment(3)
        telemetry.histogram("batch_size", BATCH_BUCKETS).observe(4)
        snapshot = json.loads(telemetry.to_json())
        assert snapshot["counters"]["requests"] == 3
        assert snapshot["histograms"]["batch_size"]["count"] == 1
        assert snapshot["histograms"]["batch_size"]["mean"] == 4.0
