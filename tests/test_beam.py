"""Composite-beam and analytic deflection tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mechanics.beam import (
    BeamSection,
    CompositeBeam,
    first_contact_force,
    simply_supported_deflection,
)
from repro.mechanics.materials import COPPER, ECOFLEX_0030


class TestBeamSection:
    def test_area(self):
        section = BeamSection(COPPER, width=2e-3, thickness=1e-3)
        assert section.area == pytest.approx(2e-6)

    def test_self_inertia(self):
        section = BeamSection(COPPER, width=12e-3, thickness=1e-3)
        assert section.self_inertia == pytest.approx(1e-12)

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            BeamSection(COPPER, width=0.0, thickness=1e-3)

    def test_rejects_negative_thickness(self):
        with pytest.raises(ConfigurationError):
            BeamSection(COPPER, width=1e-3, thickness=-1e-3)


class TestCompositeBeam:
    def test_single_layer_matches_ei(self):
        section = BeamSection(COPPER, width=10e-3, thickness=2e-3)
        beam = CompositeBeam([section], length=0.1)
        expected = COPPER.youngs_modulus * section.self_inertia
        assert beam.bending_stiffness == pytest.approx(expected)

    def test_single_layer_neutral_axis_at_mid(self):
        beam = CompositeBeam(
            [BeamSection(COPPER, width=10e-3, thickness=2e-3)], length=0.1)
        assert beam.neutral_axis == pytest.approx(1e-3)

    def test_composite_stiffer_than_either_layer(self, composite_beam):
        copper_only = CompositeBeam(
            [BeamSection(COPPER, width=2.5e-3, thickness=35e-6)], length=80e-3)
        soft_only = CompositeBeam(
            [BeamSection(ECOFLEX_0030, width=10e-3, thickness=10e-3)],
            length=80e-3)
        assert composite_beam.bending_stiffness > copper_only.bending_stiffness
        assert composite_beam.bending_stiffness > soft_only.bending_stiffness

    def test_neutral_axis_pulled_to_stiff_layer(self, composite_beam):
        # Copper dominates, so the neutral axis sits near the bottom.
        assert composite_beam.neutral_axis < 0.1 * composite_beam.total_thickness

    def test_total_thickness(self, composite_beam):
        assert composite_beam.total_thickness == pytest.approx(
            35e-6 + 10e-3)

    def test_mass_per_length_positive(self, composite_beam):
        assert composite_beam.mass_per_length > 0.0

    def test_rejects_empty_layers(self):
        with pytest.raises(ConfigurationError):
            CompositeBeam([], length=0.1)

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            CompositeBeam(
                [BeamSection(COPPER, width=1e-3, thickness=1e-3)], length=0.0)

    def test_layers_exposed_as_tuple(self, composite_beam):
        assert len(composite_beam.layers) == 2


class TestSimplySupportedDeflection:
    def test_zero_at_supports(self):
        x = np.array([0.0, 0.1])
        w = simply_supported_deflection(x, 0.05, 1.0, 0.1, 1e-3)
        assert w == pytest.approx([0.0, 0.0], abs=1e-15)

    def test_max_under_central_load(self):
        x = np.linspace(0.0, 0.1, 1001)
        w = simply_supported_deflection(x, 0.05, 1.0, 0.1, 1e-3)
        assert abs(x[np.argmax(w)] - 0.05) < 1e-3

    def test_central_load_textbook_value(self):
        # w_max = F L^3 / (48 EI) for a central point load.
        length, stiffness, force = 0.1, 1e-3, 2.0
        x = np.array([length / 2.0])
        w = simply_supported_deflection(x, length / 2.0, force, length,
                                        stiffness)
        assert w[0] == pytest.approx(force * length ** 3 / (48 * stiffness),
                                     rel=1e-9)

    def test_linear_in_force(self):
        x = np.linspace(0.0, 0.1, 11)
        w1 = simply_supported_deflection(x, 0.03, 1.0, 0.1, 1e-3)
        w2 = simply_supported_deflection(x, 0.03, 2.0, 0.1, 1e-3)
        np.testing.assert_allclose(w2, 2.0 * w1)

    def test_symmetric_load_symmetric_shape(self):
        x = np.linspace(0.0, 0.1, 101)
        w = simply_supported_deflection(x, 0.05, 1.0, 0.1, 1e-3)
        np.testing.assert_allclose(w, w[::-1], atol=1e-12)

    def test_mirror_symmetry_of_offset_loads(self):
        x = np.linspace(0.0, 0.1, 101)
        w_left = simply_supported_deflection(x, 0.03, 1.0, 0.1, 1e-3)
        w_right = simply_supported_deflection(x, 0.07, 1.0, 0.1, 1e-3)
        np.testing.assert_allclose(w_left, w_right[::-1], atol=1e-12)

    def test_rejects_load_outside_beam(self):
        with pytest.raises(ConfigurationError):
            simply_supported_deflection(np.array([0.05]), 0.2, 1.0, 0.1, 1e-3)

    def test_rejects_nonpositive_stiffness(self):
        with pytest.raises(ConfigurationError):
            simply_supported_deflection(np.array([0.05]), 0.05, 1.0, 0.1, 0.0)


class TestFirstContactForce:
    def test_textbook_value_for_central_press(self):
        # F = 48 EI g / L^3 for a central load.
        length, stiffness, gap = 0.1, 1e-3, 1e-3
        force = first_contact_force(length / 2.0, length, stiffness, gap)
        assert force == pytest.approx(48 * stiffness * gap / length ** 3,
                                      rel=1e-3)

    def test_stiffer_beam_needs_more_force(self):
        soft = first_contact_force(0.04, 0.08, 1e-4, 0.63e-3)
        stiff = first_contact_force(0.04, 0.08, 1e-3, 0.63e-3)
        assert stiff == pytest.approx(10 * soft, rel=1e-6)

    def test_end_press_needs_more_force_than_centre(self):
        centre = first_contact_force(0.04, 0.08, 1e-4, 0.63e-3)
        end = first_contact_force(0.01, 0.08, 1e-4, 0.63e-3)
        assert end > centre

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ConfigurationError):
            first_contact_force(0.04, 0.08, 1e-4, 0.0)
