"""Flight recorder: ring bounds, dump format, triggers, determinism."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.faults.retry import CircuitBreaker
from repro.obs.recorder import (
    RECORDER_DIR_ENV,
    RECORDER_ENV,
    FlightRecorder,
    flight_recorder,
    recording,
    set_flight_recorder,
)


@pytest.fixture(autouse=True)
def _no_env_dumps(monkeypatch):
    """Keep the implicit env-var dump gates closed for every test."""
    monkeypatch.delenv(RECORDER_DIR_ENV, raising=False)
    monkeypatch.delenv(RECORDER_ENV, raising=False)


class TestRing:
    def test_capacity_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.note("tick", index=index)
        events = recorder.snapshot()
        assert len(recorder) == 3
        assert [event["index"] for event in events] == [2, 3, 4]
        assert [event["seq"] for event in events] == [3, 4, 5]

    def test_kinds_are_tagged(self):
        recorder = FlightRecorder()
        recorder.record_span_event({"span": "s", "duration_s": 0.1})
        recorder.note("wide", detail=1)
        recorder.note_fault({"site": "serve.scheduler", "kind": "stall"})
        kinds = [event["kind"] for event in recorder.snapshot()]
        assert kinds == ["span", "log", "fault"]

    def test_log_events_carry_no_timestamp(self):
        recorder = FlightRecorder()
        recorder.note("wide", detail=1)
        recorder.note_fault({"site": "x"})
        for event in recorder.snapshot():
            assert "time" not in event
            assert "created_unix" not in event

    def test_clear_keeps_sequencing(self):
        recorder = FlightRecorder()
        recorder.note("one")
        recorder.clear()
        recorder.note("two")
        assert recorder.snapshot()[0]["seq"] == 2


class TestDump:
    def test_header_then_sorted_json_events(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        recorder.note("before", value=1)
        path = recorder.dump("unit test!")
        assert path is not None and path.parent == tmp_path
        assert "flight-unit-test-" in path.name
        lines = path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["reason"] == "unit test!"
        assert header["events"] == 1
        event = json.loads(lines[1])
        assert event == {"seq": 1, "kind": "log", "event": "before",
                         "value": 1}

    def test_no_directory_means_no_dump(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        recorder = FlightRecorder()
        recorder.note("x")
        assert recorder.dump("gated") is None
        assert list(tmp_path.iterdir()) == []

    def test_env_dir_enables_dumps(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RECORDER_DIR_ENV, str(tmp_path))
        recorder = FlightRecorder()
        recorder.note("x")
        path = recorder.dump("env")
        assert path is not None and path.parent == tmp_path

    def test_dump_budget_is_bounded(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path, max_dumps=2)
        recorder.note("x")
        assert recorder.dump("a") is not None
        assert recorder.dump("b") is not None
        assert recorder.dump("c") is None
        assert len(list(tmp_path.iterdir())) == 2

    def test_trigger_notes_then_dumps(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        path = recorder.trigger("gateway.internal_errors", where="/x")
        lines = path.read_text().strip().splitlines()
        last = json.loads(lines[-1])
        assert last["event"] == "gateway.internal_errors"
        assert last["where"] == "/x"


class TestProcessWide:
    def test_recording_scopes_and_restores(self):
        outer = flight_recorder()
        with recording() as scoped:
            assert flight_recorder() is scoped
            scoped.note("inside")
        assert flight_recorder() is outer

    def test_set_returns_previous(self):
        mine = FlightRecorder()
        previous = set_flight_recorder(mine)
        try:
            assert flight_recorder() is mine
        finally:
            set_flight_recorder(previous)

    def test_breaker_open_triggers_a_dump(self, tmp_path):
        with recording(directory=tmp_path) as recorder:
            breaker = CircuitBreaker(failure_threshold=2, name="dep")
            breaker.record_failure()
            assert not recorder.dumps
            breaker.record_failure()
            assert len(recorder.dumps) == 1
            # Failures past the threshold do not dump again.
            breaker.record_failure()
            assert len(recorder.dumps) == 1
        lines = recorder.dumps[0].read_text().strip().splitlines()
        last = json.loads(lines[-1])
        assert last["event"] == "breaker.dep.open"
        assert last["failures"] == 2


def _replay_lines(path):
    """The deterministic (non-span) dump lines, ``seq`` stripped.

    Span events carry wall-clock fields and their count depends on
    micro-batch timing, so ``seq`` values differ run to run; the
    fault/log *sequence and payloads* are the replay contract.
    """
    lines = []
    for line in path.read_text().strip().splitlines():
        event = json.loads(line)
        if event.get("kind") in ("log", "fault"):
            event.pop("seq")
            lines.append(json.dumps(event, sort_keys=True))
    return lines


class TestChaosRecording:
    def test_chaos_run_emits_a_dump_when_enabled(self, model_900,
                                                 tmp_path, monkeypatch):
        from repro.faults.chaos import run_chaos
        from repro.serve.loadgen import LoadProfile

        monkeypatch.setenv(RECORDER_DIR_ENV, str(tmp_path))
        report = run_chaos(
            profile=LoadProfile(sensors=2, requests_per_sensor=24),
            seed=0, model_factory=lambda config: model_900)
        dumps = sorted(tmp_path.glob("flight-*.jsonl"))
        assert len(dumps) >= 1
        assert report["flight_recording"] is not None
        recorded = [path for path in dumps
                    if str(path) == report["flight_recording"]]
        assert recorded, (dumps, report["flight_recording"])
        lines = recorded[0].read_text().strip().splitlines()
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "header" in kinds
        assert "fault" in kinds
        assert "log" in kinds

    def test_chaos_dumps_replay_bit_deterministically(
            self, model_900, tmp_path, monkeypatch):
        from repro.faults.chaos import run_chaos
        from repro.serve.loadgen import LoadProfile

        profile = LoadProfile(sensors=2, requests_per_sensor=24)
        replays = []
        for run in range(2):
            directory = tmp_path / f"run-{run}"
            monkeypatch.setenv(RECORDER_DIR_ENV, str(directory))
            report = run_chaos(profile=profile, seed=0,
                               model_factory=lambda c: model_900)
            assert report["flight_recording"] is not None
            replays.append(_replay_lines(
                Path(report["flight_recording"])))
        assert replays[0] == replays[1]
        assert any('"kind": "fault"' in line for line in replays[0])

    def test_chaos_without_recorder_env_writes_nothing(
            self, model_900, tmp_path, monkeypatch):
        from repro.faults.chaos import run_chaos
        from repro.serve.loadgen import LoadProfile

        monkeypatch.chdir(tmp_path)
        report = run_chaos(
            profile=LoadProfile(sensors=1, requests_per_sensor=8),
            seed=0, model_factory=lambda config: model_900)
        assert report["flight_recording"] is None
        assert not list(tmp_path.glob("flight-recordings")), \
            "no implicit directory without REPRO_RECORDER"
