"""Tag-discovery diagnostics, rig calibration and sweep tests."""

import numpy as np
import pytest

from repro.channel.multipath import indoor_channel
from repro.channel.propagation import BackscatterLink
from repro.core.calibration import calibrate_with_rig
from repro.core.diagnostics import discover_tags, link_report, scan_tones
from repro.core.harmonics import integer_period_group_length
from repro.errors import CalibrationError
from repro.experiments import sweeps
from repro.experiments.scenarios import fast_transducer
from repro.mechanics.indenter import GroundTruthRig
from repro.reader.sounder import FrameLevelSounder
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.clock import wiforce_clocking
from repro.sensor.tag import TagState, WiForceTag


@pytest.fixture(scope="module")
def discovery_stream():
    rng = np.random.default_rng(19)
    config = OFDMSounderConfig(carrier_frequency=900e6)
    tag = WiForceTag(fast_transducer())
    sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                indoor_channel(900e6, rng=rng), rng=rng)
    group = integer_period_group_length(config.frame_period, 1e3)
    return sounder.capture(TagState(), group), group


class TestToneDiscovery:
    def test_finds_readout_tones(self, discovery_stream):
        stream, group = discovery_stream
        tones = scan_tones(stream, group)
        found = {round(t.frequency) for t in tones}
        assert any(abs(f - 1000) < 30 for f in found)
        assert any(abs(f - 4000) < 30 for f in found)

    def test_discovers_tag_comb(self, discovery_stream):
        stream, group = discovery_stream
        tags = discover_tags(stream, group)
        assert tags
        assert tags[0].base_frequency == pytest.approx(1e3, rel=0.05)
        assert tags[0].readout_tones[1] == pytest.approx(4e3, rel=0.05)

    def test_distinct_clock_discovered(self):
        """A strip at a different base clock is identified as such."""
        rng = np.random.default_rng(29)
        config = OFDMSounderConfig(carrier_frequency=900e6)
        tag = WiForceTag(fast_transducer(),
                         clocking=wiforce_clocking(0.8e3))
        sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                    rng=rng)
        group = integer_period_group_length(config.frame_period, 0.8e3)
        stream = sounder.capture(TagState(), group)
        tags = discover_tags(stream, group)
        assert tags
        assert tags[0].base_frequency == pytest.approx(0.8e3, rel=0.05)

    def test_no_tag_in_dead_room(self):
        """Pure clutter produces no comb detections."""
        rng = np.random.default_rng(37)
        config = OFDMSounderConfig(carrier_frequency=900e6)
        tag = WiForceTag(fast_transducer())
        link = BackscatterLink(tag_blockage_db=80.0)  # tag unreachable
        sounder = FrameLevelSounder(config, tag, link,
                                    indoor_channel(900e6, rng=rng),
                                    rng=rng)
        group = integer_period_group_length(config.frame_period, 1e3)
        stream = sounder.capture(TagState(), group)
        tags = discover_tags(stream, group, min_prominence_db=15.0)
        assert not tags


class TestLinkReport:
    def test_healthy_link_usable(self, discovery_stream):
        stream, group = discovery_stream
        # Need several groups for SNR estimation: recapture longer.
        rng = np.random.default_rng(23)
        config = OFDMSounderConfig(carrier_frequency=900e6)
        tag = WiForceTag(fast_transducer())
        sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                    rng=rng)
        long_stream = sounder.capture(TagState(), 6 * group)
        report = link_report(long_stream, (1e3, 4e3), group)
        assert report.usable
        assert all(snr > 10.0 for _, snr in report.tone_snrs_db)

    def test_dead_link_flagged(self):
        rng = np.random.default_rng(31)
        config = OFDMSounderConfig(carrier_frequency=900e6)
        tag = WiForceTag(fast_transducer())
        link = BackscatterLink(tag_blockage_db=70.0)
        sounder = FrameLevelSounder(config, tag, link,
                                    indoor_channel(900e6, rng=rng),
                                    rng=rng)
        group = integer_period_group_length(config.frame_period, 1e3)
        stream = sounder.capture(TagState(), 6 * group)
        report = link_report(stream, (1e3, 4e3), group)
        assert not report.usable


class TestRigCalibration:
    def test_rig_calibrated_model_close_to_ideal(self, transducer, rng):
        rig = GroundTruthRig(rng=rng)
        forces = np.linspace(0.75, 8.0, 12)
        locations = (0.020, 0.040, 0.060)
        model = calibrate_with_rig(transducer, 900e6, locations, forces,
                                   rig, rng=rng)
        truth = transducer.differential_phases(900e6, 4.0, 0.040)
        predicted = model.predict(4.0, 0.040)
        assert predicted[0] == pytest.approx(truth.port1,
                                             abs=np.radians(4.0))

    def test_rig_noise_perturbs_model(self, transducer, rng):
        rig = GroundTruthRig(rng=rng)
        forces = np.linspace(0.75, 8.0, 12)
        locations = (0.020, 0.040, 0.060)
        noisy = calibrate_with_rig(transducer, 900e6, locations, forces,
                                   rig, phase_noise_std_deg=2.0, rng=rng)
        from repro.core.calibration import calibrate_port_observable
        clean = calibrate_port_observable(transducer, 900e6, locations,
                                          forces)
        assert noisy.predict(4.0, 0.04) != clean.predict(4.0, 0.04)

    def test_too_few_forces_rejected(self, transducer, rng):
        rig = GroundTruthRig(rng=rng)
        with pytest.raises(CalibrationError):
            calibrate_with_rig(transducer, 900e6, (0.02, 0.06),
                               [1.0, 2.0], rig, rng=rng)


class TestSweeps:
    def test_tx_power_sweep_improves_with_power(self):
        result = sweeps.sweep_tx_power(fast=True,
                                       powers_dbm=(-20.0, 10.0))
        medians = result.location_medians()
        assert medians[10.0] <= medians[-20.0] * 1.5

    def test_integration_sweep_runs(self):
        result = sweeps.sweep_integration(fast=True, groups=(1, 4))
        assert len(result.points) == 2
        assert all(force < 1.5 for _, force, _ in result.points)

    def test_range_sweep_runs(self):
        result = sweeps.sweep_range(fast=True, separations=(1.0, 4.0))
        assert all(location < 5e-3 for _, _, location in result.points)

    def test_calibration_density_sweep(self):
        result = sweeps.sweep_calibration_density(fast=True,
                                                  location_counts=(3, 9))
        medians = result.location_medians()
        # Denser calibration should not be worse.
        assert medians[9.0] <= medians[3.0] * 1.5
