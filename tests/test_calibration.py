"""Sensor-model calibration tests (paper section 4.2 / Table 1)."""

import numpy as np
import pytest

from repro.core.calibration import (
    CalibrationCurve,
    SensorModel,
    calibrate_harmonic_observable,
    calibrate_port_observable,
    fit_sensor_model,
    harmonic_differential_phases,
)
from repro.errors import CalibrationError

LOCATIONS = (0.020, 0.030, 0.040, 0.050, 0.060)
FORCES = np.linspace(0.5, 8.0, 12)


@pytest.fixture(scope="module")
def port_model(transducer=None):
    from repro.experiments.scenarios import fast_transducer
    return calibrate_port_observable(fast_transducer(), 900e6, LOCATIONS,
                                     FORCES)


class TestCalibrationCurve:
    def test_phase_evaluates_polynomial(self):
        curve = CalibrationCurve(0.04, (0.0, 0.0, 2.0, 1.0), (0.0, 8.0))
        assert curve.phase(3.0) == pytest.approx(7.0)

    def test_clips_out_of_range_force(self):
        curve = CalibrationCurve(0.04, (1.0, 0.0), (1.0, 8.0))
        assert curve.phase(100.0) == pytest.approx(curve.phase(8.0))
        assert curve.phase(0.0) == pytest.approx(curve.phase(1.0))


class TestFitSensorModel:
    def test_reproduces_cubic_data(self):
        forces = np.linspace(1.0, 8.0, 10)
        phases = 0.01 * forces ** 3 - 0.2 * forces + 0.5
        data = np.stack([phases, phases + 0.1])
        model = fit_sensor_model([0.02, 0.06], forces, data, data, 900e6)
        predicted, _ = model.predict(4.0, 0.02)
        assert predicted == pytest.approx(0.01 * 64 - 0.8 + 0.5, abs=1e-6)

    def test_unwraps_wrapped_inputs(self):
        forces = np.linspace(1.0, 8.0, 10)
        true_phase = np.linspace(2.8, 4.0, 10)  # crosses pi
        wrapped = np.angle(np.exp(1j * true_phase))
        data = np.stack([wrapped, wrapped])
        model = fit_sensor_model([0.02, 0.06], forces, data, data, 900e6)
        predicted, _ = model.predict(8.0, 0.02)
        assert predicted == pytest.approx(4.0, abs=0.02)

    def test_rejects_wrong_shape(self):
        with pytest.raises(CalibrationError):
            fit_sensor_model([0.02, 0.06], [1.0, 2.0, 3.0, 4.0],
                             np.zeros((3, 4)), np.zeros((2, 4)), 900e6)

    def test_rejects_too_few_forces(self):
        with pytest.raises(CalibrationError):
            fit_sensor_model([0.02, 0.06], [1.0, 2.0],
                             np.zeros((2, 2)), np.zeros((2, 2)), 900e6)


class TestSensorModel:
    def test_predict_at_calibration_point(self, port_model, transducer):
        truth = transducer.differential_phases(900e6, 4.0, 0.040)
        predicted = port_model.predict(4.0, 0.040)
        assert predicted[0] == pytest.approx(truth.port1, abs=np.radians(4.0))
        assert predicted[1] == pytest.approx(truth.port2, abs=np.radians(4.0))

    def test_interpolates_at_55mm(self, port_model, transducer):
        """The paper's Table 1 validation: the model predicts 55 mm,
        a location it was never calibrated at."""
        truth = transducer.differential_phases(900e6, 4.0, 0.055)
        predicted = port_model.predict(4.0, 0.055)
        assert predicted[0] == pytest.approx(truth.port1, abs=np.radians(6.0))
        assert predicted[1] == pytest.approx(truth.port2, abs=np.radians(6.0))

    def test_clips_location_to_span(self, port_model):
        inside = port_model.predict(4.0, 0.060)
        outside = port_model.predict(4.0, 0.075)
        assert outside == pytest.approx(inside)

    def test_predict_grid_matches_pointwise(self, port_model):
        forces = np.array([1.0, 4.0, 7.0])
        locations = np.array([0.025, 0.045])
        phi1, phi2 = port_model.predict_grid(forces, locations)
        for i, force in enumerate(forces):
            for j, location in enumerate(locations):
                p1, p2 = port_model.predict(float(force), float(location))
                assert phi1[i, j] == pytest.approx(p1)
                assert phi2[i, j] == pytest.approx(p2)

    def test_force_range(self, port_model):
        low, high = port_model.force_range
        assert low == pytest.approx(0.5)
        assert high == pytest.approx(8.0)

    def test_rejects_negative_force(self, port_model):
        with pytest.raises(CalibrationError):
            port_model.predict(-1.0, 0.04)

    def test_rejects_single_location(self):
        curve = CalibrationCurve(0.04, (1.0, 0.0), (0.5, 8.0))
        with pytest.raises(CalibrationError):
            SensorModel([0.04], [curve], [curve], 900e6)

    def test_rejects_unsorted_locations(self):
        curve = CalibrationCurve(0.04, (1.0, 0.0), (0.5, 8.0))
        with pytest.raises(CalibrationError):
            SensorModel([0.06, 0.02], [curve, curve], [curve, curve], 900e6)


class TestPersistence:
    def test_save_load_roundtrip(self, port_model, tmp_path):
        path = tmp_path / "model.json"
        port_model.save(path)
        loaded = SensorModel.load(path)
        assert loaded.frequency == port_model.frequency
        for force in (1.0, 4.0, 7.5):
            for location in (0.021, 0.044, 0.059):
                assert loaded.predict(force, location) == pytest.approx(
                    port_model.predict(force, location))

    def test_dict_roundtrip(self, port_model):
        rebuilt = SensorModel.from_dict(port_model.to_dict())
        assert rebuilt.predict(3.0, 0.03) == pytest.approx(
            port_model.predict(3.0, 0.03))


class TestHarmonicObservable:
    def test_untouched_phases_zero(self, tag):
        phi1, phi2 = harmonic_differential_phases(tag, 900e6, 0.0, 0.04)
        assert phi1 == pytest.approx(0.0)
        assert phi2 == pytest.approx(0.0)

    def test_harmonic_close_to_port_observable(self, tag, transducer):
        """The wireless observable tracks the VNA observable (the
        paper's Table 1 overlay) to within the switch-leakage skew."""
        harmonic = harmonic_differential_phases(tag, 900e6, 4.0, 0.040)
        port = transducer.differential_phases(900e6, 4.0, 0.040)
        assert harmonic[0] == pytest.approx(port.port1, abs=np.radians(12.0))
        assert harmonic[1] == pytest.approx(port.port2, abs=np.radians(12.0))

    def test_harmonic_calibration_model(self, tag):
        model = calibrate_harmonic_observable(tag, 900e6, LOCATIONS,
                                              FORCES)
        truth = harmonic_differential_phases(tag, 900e6, 4.0, 0.040)
        predicted = model.predict(4.0, 0.040)
        assert predicted[0] == pytest.approx(truth[0], abs=np.radians(3.0))

    def test_port_calibration_noise_option(self, transducer, rng):
        model = calibrate_port_observable(
            transducer, 900e6, LOCATIONS, FORCES,
            phase_noise_std_deg=0.5, rng=rng)
        clean = calibrate_port_observable(transducer, 900e6, LOCATIONS,
                                          FORCES)
        noisy_prediction = model.predict(4.0, 0.04)[0]
        clean_prediction = clean.predict(4.0, 0.04)[0]
        assert noisy_prediction == pytest.approx(clean_prediction,
                                                 abs=np.radians(2.0))
        assert noisy_prediction != clean_prediction
