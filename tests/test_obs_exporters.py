"""Exporters: Prometheus text rendering and JSON snapshot round-trips."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    Registry,
    registry_from_snapshot,
    to_prometheus,
    write_snapshot,
)

GOLDEN = Path(__file__).parent / "data" / "obs_prometheus.golden.txt"


def _example_registry() -> Registry:
    """Deterministic instruments matching the committed golden file."""
    registry = Registry()
    registry.counter("estimator.inversions").increment(3)
    registry.gauge("campaign.worker_utilization").set(0.75)
    histogram = registry.histogram("reader.capture_seconds",
                                   bounds=(1.0, 2.0))
    for value in (0.5, 1.5, 4.0):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_matches_golden_file(self):
        """The text exposition format is a contract — diff vs golden."""
        assert to_prometheus(_example_registry()) == GOLDEN.read_text()

    def test_accepts_snapshot_dict(self):
        registry = _example_registry()
        assert (to_prometheus(registry.snapshot())
                == to_prometheus(registry))

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(Registry()) == ""

    def test_names_are_sanitized(self):
        registry = Registry()
        registry.counter("serve/flush-errors.total").increment()
        text = to_prometheus(registry)
        assert "repro_serve_flush_errors_total 1" in text

    def test_custom_prefix(self):
        registry = Registry()
        registry.counter("c").increment()
        assert "wiforce_c 1" in to_prometheus(registry, prefix="wiforce")

    def test_buckets_are_cumulative(self):
        text = to_prometheus(_example_registry())
        lines = [line for line in text.splitlines() if "_bucket" in line]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3  # +Inf bucket equals the total count


class TestSnapshotRoundTrip:
    def test_registry_round_trips_through_dict(self):
        registry = _example_registry()
        rebuilt = registry_from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_registry_round_trips_through_file(self, tmp_path):
        registry = _example_registry()
        path = write_snapshot(registry, tmp_path / "obs" / "snap.json")
        assert path.exists()
        assert json.loads(path.read_text())["counters"] == {
            "estimator.inversions": 3}
        rebuilt = registry_from_snapshot(path)
        assert rebuilt.snapshot() == registry.snapshot()

    def test_reloaded_quantiles_match(self):
        registry = _example_registry()
        original = registry.histogram("reader.capture_seconds")
        rebuilt = registry_from_snapshot(registry.snapshot())
        reloaded = rebuilt.histogram("reader.capture_seconds")
        for q in (0.0, 0.5, 0.9, 1.0):
            assert reloaded.quantile(q) == original.quantile(q)
        assert reloaded.minimum == original.minimum
        assert reloaded.maximum == original.maximum

    def test_write_snapshot_accepts_plain_dict(self, tmp_path):
        snapshot = _example_registry().snapshot()
        path = write_snapshot(snapshot, tmp_path / "snap.json")
        assert registry_from_snapshot(path).snapshot() == snapshot

    def test_rebuilt_histogram_keeps_observing(self):
        rebuilt = registry_from_snapshot(_example_registry().snapshot())
        histogram = rebuilt.histogram("reader.capture_seconds")
        histogram.observe(0.25)
        assert histogram.count == 4
        assert histogram.minimum == 0.25


def test_snapshot_load_rejects_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        registry_from_snapshot(tmp_path / "absent.json")
