"""Force-to-phase transduction tests (paper section 3.1, Figs. 4-5)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SensorError
from repro.sensor.geometry import (
    SensorDesign,
    thin_trace_design,
)


class TestSensorDesign:
    def test_default_dimensions_match_paper(self, design):
        assert design.line.width == pytest.approx(2.5e-3)
        assert design.line.ground_width == pytest.approx(6e-3)
        assert design.line.height == pytest.approx(0.63e-3)
        assert design.length == pytest.approx(80e-3)

    def test_default_switch_is_reflective(self, design):
        assert design.switch.is_reflective

    def test_composite_beam_layers(self, design):
        beam = design.composite_beam()
        assert len(beam.layers) == 2
        assert beam.length == design.length

    def test_foundation_positive(self, design):
        assert design.foundation_stiffness() > 0.0

    def test_thin_trace_kernel_narrow(self):
        thin = thin_trace_design()
        assert thin.pressure_kernel().half_width(8.0) < 2e-3

    def test_rejects_bad_soft_thickness(self):
        with pytest.raises(ConfigurationError):
            SensorDesign(soft_thickness=0.0)

    def test_rejects_bad_contact_resistance(self):
        with pytest.raises(ConfigurationError):
            SensorDesign(contact_resistance=-1.0)

    def test_contact_solver_uses_design_gap(self, design):
        solver = design.contact_solver(nodes=41)
        assert solver.gap == design.line.height


class TestDifferentialPhases:
    def test_no_force_no_phase(self, transducer):
        phases = transducer.differential_phases(900e6, 0.0, 0.04)
        assert not phases.in_contact
        assert phases.port1 == 0.0
        assert phases.port2 == 0.0

    def test_contact_produces_phase_jump(self, transducer):
        phases = transducer.differential_phases(900e6, 3.0, 0.04)
        assert phases.in_contact
        assert abs(phases.port1) > np.radians(5.0)

    def test_centre_press_symmetric(self, transducer):
        """Fig. 5: a centre press shows the same phase at both ports."""
        phases = transducer.differential_phases(2.4e9, 3.0, 0.04)
        assert phases.port1 == pytest.approx(phases.port2, abs=np.radians(3.0))

    def test_mirrored_presses_swap_ports(self, transducer):
        left = transducer.differential_phases(2.4e9, 3.0, 0.025)
        right = transducer.differential_phases(2.4e9, 3.0, 0.055)
        assert left.port1 == pytest.approx(right.port2, abs=np.radians(4.0))
        assert left.port2 == pytest.approx(right.port1, abs=np.radians(4.0))

    def test_phase_varies_with_force(self, transducer):
        low = transducer.differential_phases(2.4e9, 1.0, 0.04)
        high = transducer.differential_phases(2.4e9, 7.0, 0.04)
        assert abs(high.port1 - low.port1) > np.radians(10.0)

    def test_phase_varies_with_location(self, transducer):
        a = transducer.differential_phases(2.4e9, 3.0, 0.030)
        b = transducer.differential_phases(2.4e9, 3.0, 0.050)
        assert abs(a.port1 - b.port1) > np.radians(10.0)

    def test_higher_carrier_more_phase_sensitivity(self, transducer):
        """The paper's explanation for the 2.4 GHz accuracy win."""
        low = [transducer.differential_phases(900e6, f, 0.04).port1
               for f in (2.0, 6.0)]
        high = [transducer.differential_phases(2.4e9, f, 0.04).port1
                for f in (2.0, 6.0)]
        assert abs(high[1] - high[0]) > 1.5 * abs(low[1] - low[0])

    def test_as_degrees(self, transducer):
        phases = transducer.differential_phases(900e6, 3.0, 0.04)
        deg1, deg2 = phases.as_degrees()
        assert deg1 == pytest.approx(np.degrees(phases.port1))
        assert deg2 == pytest.approx(np.degrees(phases.port2))

    def test_rejects_negative_force(self, transducer):
        with pytest.raises(SensorError):
            transducer.differential_phases(900e6, -1.0, 0.04)


class TestShortingPoints:
    def test_none_without_force(self, transducer):
        assert transducer.shorting_points(0.0, 0.04) is None

    def test_ordered_points(self, transducer):
        points = transducer.shorting_points(4.0, 0.04)
        assert points is not None
        assert points[0] < points[1]

    def test_spread_grows_with_force(self, transducer):
        small = transducer.shorting_points(2.0, 0.04)
        large = transducer.shorting_points(7.0, 0.04)
        assert (large[1] - large[0]) > (small[1] - small[0])

    def test_touched_twoport_blocks_transmission(self, transducer):
        network = transducer.touched_twoport(np.array([900e6]), 4.0, 0.04)
        assert abs(network.s21[0]) < 0.1

    def test_untouched_twoport_transparent(self, transducer):
        network = transducer.untouched_twoport(np.array([900e6]))
        assert abs(network.s21[0]) > 0.9

    def test_port_reflections_magnitudes(self, transducer):
        gamma1, gamma2 = transducer.port_reflections(np.array([900e6]),
                                                     4.0, 0.04)
        assert abs(gamma1[0]) > 0.8
        assert abs(gamma2[0]) > 0.8

    def test_max_force_property(self, transducer):
        assert transducer.max_force >= 8.0
