"""Phase-group harmonic extraction tests (paper Eqns. 1-3)."""

import numpy as np
import pytest

from repro.core.harmonics import (
    HarmonicExtractor,
    integer_period_group_length,
)
from repro.errors import ConfigurationError, ReaderError
from repro.reader.sounder import ChannelEstimateStream

T = 57.6e-6


def synthetic_stream(frames=1250, subcarriers=8, tone=1e3, amplitude=1e-5,
                     phase=0.7, clutter=1e-2, noise=0.0, rng=None):
    """Stream with DC clutter plus one complex tone of known phase."""
    times = np.arange(frames) * T
    carrier = amplitude * np.exp(1j * (2 * np.pi * tone * times + phase))
    estimates = np.full((frames, subcarriers), clutter, dtype=complex)
    estimates += carrier[:, None]
    if noise > 0.0:
        rng = rng or np.random.default_rng(0)
        estimates += noise * (rng.normal(size=estimates.shape)
                              + 1j * rng.normal(size=estimates.shape))
    return ChannelEstimateStream(
        estimates=estimates,
        times=times,
        frequencies=900e6 + np.arange(subcarriers) * 195e3,
        frame_period=T,
    )


class TestIntegerPeriodGroupLength:
    def test_paper_parameters_give_625(self):
        """57.6 us frames and a 1 kHz clock: N = 625 (36 ms groups)."""
        assert integer_period_group_length(T, 1e3) == 625

    def test_exact_divisor_case(self):
        assert integer_period_group_length(1e-3, 1e3) == 1

    def test_tone_completes_integer_cycles(self):
        n = integer_period_group_length(T, 1e3)
        cycles = 1e3 * n * T
        assert cycles == pytest.approx(round(cycles), abs=1e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            integer_period_group_length(0.0, 1e3)


class TestHarmonicExtractor:
    def test_recovers_tone_phase(self):
        stream = synthetic_stream(phase=0.7)
        extractor = HarmonicExtractor(tones=(1e3,), group_length=625)
        matrix = extractor.extract(stream)[1e3]
        assert matrix.groups == 2
        # The DFT measures the tone phase at the group start.
        measured = np.angle(matrix.values[0, 0])
        assert measured == pytest.approx(0.7, abs=1e-6)

    def test_recovers_tone_amplitude(self):
        stream = synthetic_stream(amplitude=3e-5)
        extractor = HarmonicExtractor(tones=(1e3,), group_length=625)
        matrix = extractor.extract(stream)[1e3]
        assert np.abs(matrix.values[0, 0]) == pytest.approx(3e-5, rel=1e-6)

    def test_dc_clutter_rejected(self):
        """60+ dB of static clutter must not leak into the tone bin."""
        stream = synthetic_stream(amplitude=1e-6, clutter=1.0)
        extractor = HarmonicExtractor(tones=(1e3,), group_length=625)
        matrix = extractor.extract(stream)[1e3]
        assert np.abs(matrix.values[0, 0]) == pytest.approx(1e-6, rel=1e-3)

    def test_rect_window_without_mean_removal_still_nulls_dc(self):
        stream = synthetic_stream(amplitude=1e-6, clutter=1.0)
        extractor = HarmonicExtractor(tones=(1e3,), group_length=625,
                                      remove_mean=False)
        matrix = extractor.extract(stream)[1e3]
        assert np.abs(matrix.values[0, 0]) == pytest.approx(1e-6, rel=1e-3)

    def test_hann_window_tolerates_non_integer_groups(self):
        stream = synthetic_stream(frames=1200, amplitude=1e-6, clutter=1.0)
        extractor = HarmonicExtractor(tones=(1e3,), group_length=600,
                                      window="hann")
        matrix = extractor.extract(stream)[1e3]
        # Hann halves the tone amplitude but keeps clutter far below it.
        assert np.abs(matrix.values[0, 0]) > 0.3e-6

    def test_off_tone_returns_nothing(self):
        stream = synthetic_stream(tone=1e3, amplitude=1e-5, clutter=0.0)
        extractor = HarmonicExtractor(tones=(4e3,), group_length=625)
        matrix = extractor.extract(stream)[4e3]
        assert np.abs(matrix.values[0, 0]) < 1e-9

    def test_multiple_tones_extracted_independently(self):
        times = np.arange(1250) * T
        estimates = (1e-5 * np.exp(1j * 2 * np.pi * 1e3 * times)
                     + 2e-5 * np.exp(1j * 2 * np.pi * 4e3 * times))[:, None]
        stream = ChannelEstimateStream(
            estimates=np.repeat(estimates, 4, axis=1),
            times=times,
            frequencies=900e6 + np.arange(4) * 195e3,
            frame_period=T,
        )
        extractor = HarmonicExtractor(tones=(1e3, 4e3), group_length=625)
        result = extractor.extract(stream)
        assert np.abs(result[1e3].values[0, 0]) == pytest.approx(1e-5,
                                                                 rel=1e-6)
        assert np.abs(result[4e3].values[0, 0]) == pytest.approx(2e-5,
                                                                 rel=1e-6)

    def test_partial_trailing_group_dropped(self):
        stream = synthetic_stream(frames=1500)
        extractor = HarmonicExtractor(tones=(1e3,), group_length=625)
        matrix = extractor.extract(stream)[1e3]
        assert matrix.groups == 2

    def test_group_times_increase(self):
        stream = synthetic_stream(frames=1875)
        extractor = HarmonicExtractor(tones=(1e3,), group_length=625)
        matrix = extractor.extract(stream)[1e3]
        assert np.all(np.diff(matrix.group_times) > 0)

    def test_nyquist_guard(self):
        stream = synthetic_stream()
        extractor = HarmonicExtractor(tones=(20e3,), group_length=625)
        with pytest.raises(ReaderError):
            extractor.extract(stream)

    def test_too_short_stream_rejected(self):
        stream = synthetic_stream(frames=100)
        extractor = HarmonicExtractor(tones=(1e3,), group_length=625)
        with pytest.raises(ReaderError):
            extractor.extract(stream)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            HarmonicExtractor(tones=(1e3,), group_length=625,
                              window="blackman")

    def test_rejects_empty_tones(self):
        with pytest.raises(ConfigurationError):
            HarmonicExtractor(tones=(), group_length=625)


class TestDopplerSpectrum:
    def test_tone_appears_at_right_bin(self):
        stream = synthetic_stream(amplitude=1e-4, clutter=1e-3)
        extractor = HarmonicExtractor(tones=(1e3,), group_length=625)
        frequencies, magnitude = extractor.doppler_spectrum(stream)
        peak_bin = int(np.argmin(np.abs(frequencies - 1e3)))
        neighbours = magnitude[[peak_bin - 3, peak_bin + 3]]
        assert magnitude[peak_bin] > 10.0 * neighbours.max()

    def test_rejects_bad_group_index(self):
        stream = synthetic_stream()
        extractor = HarmonicExtractor(tones=(1e3,), group_length=625)
        with pytest.raises(ReaderError):
            extractor.doppler_spectrum(stream, group_index=5)
