"""SLO objectives, multi-window burn-rate alerting, the CLI gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ObservabilityError
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    Slo,
    SloMonitor,
    default_slos,
    evaluate_report,
    evaluate_slo,
    evaluate_snapshot,
    render_statuses,
    report_slos,
)

_AVAIL = Slo(name="avail", kind="availability", target=0.99,
             total=("requests",), bad=("errors",))
_LATENCY = Slo(name="lat", kind="latency", target=0.9,
               histogram="latency", threshold_s=0.1)


def _snapshot(requests=0, errors=0, latency=None):
    snapshot = {"counters": {"requests": requests, "errors": errors},
                "gauges": {}, "histograms": {}}
    if latency is not None:
        fast, slow = latency
        snapshot["histograms"]["latency"] = {
            "name": "latency", "bounds": [0.1, 1.0],
            "counts": [fast, slow, 0], "count": fast + slow,
            "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 1.0,
        }
    return snapshot


class TestSloValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ObservabilityError):
            Slo(name="x", kind="vibes")

    def test_rejects_target_out_of_range(self):
        with pytest.raises(ObservabilityError):
            Slo(name="x", kind="availability", target=1.0)

    def test_report_kind_needs_path(self):
        with pytest.raises(ObservabilityError):
            Slo(name="x", kind="report")


class TestPointInTime:
    def test_no_traffic_is_compliant(self):
        status = evaluate_slo(_AVAIL, _snapshot())
        assert status["ok"] and status["no_data"]
        assert status["compliance"] is None
        assert status["budget_remaining"] == 1.0

    def test_availability_math(self):
        status = evaluate_slo(_AVAIL,
                              _snapshot(requests=1000, errors=15))
        assert status["compliance"] == pytest.approx(0.985)
        assert not status["ok"]
        assert status["budget_remaining"] == 0.0

    def test_availability_within_budget(self):
        status = evaluate_slo(_AVAIL, _snapshot(requests=1000, errors=2))
        assert status["ok"]
        assert status["budget_remaining"] == pytest.approx(0.8)

    def test_latency_from_bucket_counts(self):
        status = evaluate_slo(_LATENCY,
                              _snapshot(latency=(95, 5)))
        assert status["compliance"] == pytest.approx(0.95)
        assert status["ok"]
        failing = evaluate_slo(_LATENCY, _snapshot(latency=(80, 20)))
        assert not failing["ok"]

    def test_evaluate_snapshot_skips_report_kind(self):
        slos = (_AVAIL,
                Slo(name="r", kind="report", path="a.b", upper_bound=1))
        statuses = evaluate_snapshot(slos, _snapshot(requests=10))
        assert [status["name"] for status in statuses] == ["avail"]


class TestReportEvaluation:
    def test_report_bounds(self):
        slo = Slo(name="parity", kind="report",
                  path="parity.max_force_delta_n", upper_bound=0.0)
        ok = evaluate_report([slo],
                             {"parity": {"max_force_delta_n": 0.0}})
        assert ok[0]["ok"]
        bad = evaluate_report([slo],
                              {"parity": {"max_force_delta_n": 0.5}})
        assert not bad[0]["ok"]

    def test_missing_path_is_no_data_failure(self):
        slo = Slo(name="parity", kind="report", path="nope.nothing",
                  upper_bound=0.0)
        status = evaluate_report([slo], {})[0]
        assert not status["ok"] and status["no_data"]

    def test_counter_slos_read_the_telemetry_block(self):
        report = {"telemetry": _snapshot(requests=100, errors=0)}
        statuses = evaluate_report([_AVAIL], report)
        assert statuses[0]["ok"] and not statuses[0]["no_data"]

    def test_builtin_report_slos_pass_on_bench_report(self):
        report = {
            "telemetry": {
                "counters": {"serve.requests": 512, "serve.rejected": 0},
                "histograms": {
                    "serve.latency_seconds": {
                        "name": "serve.latency_seconds",
                        "bounds": [0.1, 0.3, 1.0],
                        "counts": [500, 12, 0, 0], "count": 512,
                        "sum": 1.0, "mean": 0.0, "min": 0.0, "max": 0.2,
                    },
                },
            },
            "parity": {"max_force_delta_n": 0.0,
                       "max_location_delta_m": 0.0},
            "speedup_vs_serial": 2.5,
        }
        statuses = evaluate_report(report_slos(), report)
        assert all(status["ok"] for status in statuses)
        assert len(statuses) == 5


class TestBurnRates:
    def _monitor(self, windows=DEFAULT_WINDOWS):
        clock = {"now": 0.0}
        monitor = SloMonitor((_AVAIL,), windows=windows,
                             clock=lambda: clock["now"])
        return monitor, clock

    def test_no_samples_is_quiet(self):
        monitor, _ = self._monitor()
        statuses = monitor.evaluate()
        assert statuses[0]["burn"] == []
        assert not statuses[0]["alerting"]

    def test_single_sample_has_no_burn(self):
        monitor, _ = self._monitor()
        statuses = monitor.observe(_snapshot(requests=10))
        for burn in statuses[0]["burn"]:
            assert burn["burn_rate"] is None
        assert not statuses[0]["alerting"]

    def test_fast_burn_alerts_when_all_windows_burn(self):
        monitor, clock = self._monitor()
        monitor.observe(_snapshot(requests=1000, errors=0))
        clock["now"] = 60.0
        # 50% error rate over the window = 50x budget velocity for a
        # 99% objective — above both the 14.4x and 6x factors.
        statuses = monitor.observe(_snapshot(requests=1200,
                                             errors=100))
        status = statuses[0]
        rates = [burn["burn_rate"] for burn in status["burn"]]
        assert all(rate == pytest.approx(50.0) for rate in rates)
        assert status["alerting"]

    def test_slow_clean_window_vetoes_the_alert(self):
        monitor, clock = self._monitor(
            windows=((60.0, 14.4), (3600.0, 6.0)))
        monitor.observe(_snapshot(requests=1000, errors=0))
        clock["now"] = 1800.0
        monitor.observe(_snapshot(requests=101000, errors=10))
        clock["now"] = 1830.0
        # Short window burns hot; the hour window has absorbed the
        # clean history, so its rate sits under 6x and vetoes.
        statuses = monitor.observe(_snapshot(requests=101100,
                                             errors=40))
        status = statuses[0]
        short, long = status["burn"]
        assert short["alerting"]
        assert not long["alerting"]
        assert not status["alerting"]

    def test_counter_reset_does_not_go_negative(self):
        monitor, clock = self._monitor()
        monitor.observe(_snapshot(requests=100, errors=50))
        clock["now"] = 10.0
        statuses = monitor.observe(_snapshot(requests=200, errors=0))
        for burn in statuses[0]["burn"]:
            if burn["burn_rate"] is not None:
                assert burn["burn_rate"] == 0.0

    def test_report_kind_slos_are_ignored(self):
        monitor = SloMonitor(report_slos())
        assert all(slo.kind != "report" for slo in monitor.slos)

    def test_default_slos_cover_gateway_and_latency(self):
        names = {slo.name for slo in default_slos()}
        assert names == {"gateway-availability", "serve-latency"}


class TestRender:
    def test_table_marks_failures_and_alerts(self):
        statuses = evaluate_report(report_slos(), {
            "telemetry": _snapshot(),
            "parity": {"max_force_delta_n": 1.0,
                       "max_location_delta_m": 0.0},
            "speedup_vs_serial": 2.0,
        })
        table = render_statuses(statuses)
        assert "FAIL" in table
        assert "parity-force" in table

    def test_burn_alert_annotated(self):
        status = dict(evaluate_slo(_AVAIL,
                                   _snapshot(requests=100, errors=0)),
                      alerting=True)
        assert "[BURN ALERT]" in render_statuses([status])


class TestSloCli:
    def _write_report(self, tmp_path, **overrides):
        report = {
            "telemetry": {
                "counters": {"serve.requests": 100, "serve.rejected": 0},
                "histograms": {
                    "serve.latency_seconds": {
                        "name": "serve.latency_seconds",
                        "bounds": [0.1, 0.3],
                        "counts": [100, 0, 0], "count": 100,
                        "sum": 1.0, "mean": 0.01, "min": 0.0,
                        "max": 0.05,
                    },
                },
            },
            "parity": {"max_force_delta_n": 0.0,
                       "max_location_delta_m": 0.0},
            "speedup_vs_serial": 1.8,
        }
        report.update(overrides)
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(report))
        return path

    def test_passing_report_exits_zero(self, tmp_path, capsys):
        path = self._write_report(tmp_path)
        assert main(["slo", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve-latency" in out
        assert "FAIL" not in out

    def test_violated_report_exits_one(self, tmp_path, capsys):
        path = self._write_report(
            tmp_path, parity={"max_force_delta_n": 0.7,
                              "max_location_delta_m": 0.0})
        assert main(["slo", "--input", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        path = self._write_report(tmp_path)
        assert main(["slo", "--input", str(path), "--json"]) == 0
        statuses = json.loads(capsys.readouterr().out)
        assert {status["name"] for status in statuses} \
            == {slo.name for slo in report_slos()}

    def test_missing_report_fails(self, tmp_path):
        assert main(["slo", "--input", str(tmp_path / "nope.json")]) == 1
