"""Reproduction-report generator tests (fast sections only)."""

from pathlib import Path

import pytest

from repro.experiments import report


class TestSectionBuilders:
    def test_fig10_section(self):
        lines = report._fig10()
        assert any("S11" in line for line in lines)

    def test_fig19_section(self):
        lines = report._fig19()
        text = "\n".join(lines)
        assert "narrow" in text and "wide" in text

    def test_fig04_section(self):
        lines = report._fig04(fast=True)
        assert any("swing" in line for line in lines)

    def test_power_section(self):
        lines = report._power_baselines(fast=True)
        text = "\n".join(lines)
        assert "uW" in text and "RFID" in text


@pytest.mark.integration
class TestGenerateReport:
    def test_report_committed_at_root(self):
        """The repo ships a generated REPORT.md (python -m repro report)."""
        text = (Path(__file__).parent.parent / "REPORT.md").read_text()
        for heading in ("Fig. 4c", "Table 1", "Fig. 16", "Fig. 19"):
            assert heading in text
