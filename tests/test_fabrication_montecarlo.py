"""Fabrication-tolerance, calibration-transfer and campaign tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import montecarlo
from repro.experiments.runners import run_form_factor
from repro.sensor.fabrication import (
    FabricationTolerances,
    perturbed_design,
    scaled_design,
    tolerance_report,
)
from repro.sensor.geometry import default_sensor_design


class TestPerturbedDesign:
    def test_zero_tolerance_is_nominal(self, rng):
        tolerances = FabricationTolerances(0.0, 0.0, 0.0, 0.0)
        unit = perturbed_design(tolerances=tolerances, rng=rng)
        nominal = default_sensor_design()
        assert unit.line.height == nominal.line.height
        assert unit.line.width == nominal.line.width
        assert (unit.soft_material.youngs_modulus
                == nominal.soft_material.youngs_modulus)

    def test_units_differ(self):
        rng = np.random.default_rng(3)
        first = perturbed_design(rng=rng)
        second = perturbed_design(rng=rng)
        assert first.line.height != second.line.height

    def test_deviations_bounded(self):
        rng = np.random.default_rng(9)
        tolerances = FabricationTolerances()
        nominal = default_sensor_design()
        for _ in range(50):
            unit = perturbed_design(tolerances=tolerances, rng=rng)
            ratio = unit.line.height / nominal.line.height
            assert 1 - 3 * tolerances.gap_height <= ratio
            assert ratio <= 1 + 3 * tolerances.gap_height

    def test_rejects_huge_tolerance(self):
        with pytest.raises(ConfigurationError):
            FabricationTolerances(gap_height=0.6)


class TestToleranceReport:
    def test_batch_stays_matched(self):
        """Even a sloppy batch keeps S11 below -10 dB: the RF design
        point is logarithmically insensitive to geometry."""
        report = tolerance_report(units=40, seed=1)
        assert report.worst_mismatch_db < -10.0

    def test_impedance_spread_small(self):
        report = tolerance_report(units=40, seed=1)
        mean, std = report.impedance_spread
        assert mean == pytest.approx(50.0, abs=3.0)
        assert std < 3.0

    def test_rejects_tiny_batch(self):
        with pytest.raises(ConfigurationError):
            tolerance_report(units=1)


class TestScaledDesign:
    def test_scales_geometry(self):
        half = scaled_design(0.5)
        nominal = default_sensor_design()
        assert half.line.length == pytest.approx(nominal.line.length / 2)
        assert half.line.height == pytest.approx(nominal.line.height / 2)
        assert half.soft_thickness == pytest.approx(
            nominal.soft_thickness / 2)

    def test_impedance_scale_invariant(self):
        """Z0 depends only on the h/w ratio, so scaling preserves it."""
        nominal = default_sensor_design().line.characteristic_impedance
        half = scaled_design(0.5).line.characteristic_impedance
        assert half == pytest.approx(nominal, abs=0.5)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            scaled_design(0.0)


@pytest.mark.integration
class TestFormFactor:
    def test_miniaturisation_preserves_relative_accuracy(self):
        """Paper section 7: a half-size sensor read at twice the
        carrier keeps its phase swing and relative localization."""
        result = run_form_factor(scales=(1.0, 0.5))
        full, half = result.phase_swing_deg
        assert half > 0.6 * full
        rel_full, rel_half = result.relative_location_medians
        assert rel_half < 3.0 * rel_full
        # Absolute accuracy of the mini sensor stays sub-millimetre.
        assert result.location_medians_m[1] < 1e-3


@pytest.mark.integration
class TestCampaigns:
    def test_environment_robustness(self):
        """Accuracy holds across random indoor environments."""
        result = montecarlo.environment_campaign(trials=4, fast=True)
        assert result.worst_force_median < 1.0
        assert result.worst_location_median < 2e-3

    def test_calibration_transfer_vs_per_unit(self):
        """Transferring the nominal calibration to toleranced units
        costs accuracy; per-unit calibration recovers it."""
        transfer = montecarlo.calibration_transfer_campaign(units=3)
        per_unit = montecarlo.per_unit_calibration_campaign(units=3)
        assert (per_unit.force_medians.mean()
                <= transfer.force_medians.mean() + 1e-9)
        # Per-unit trimming keeps every unit sub-newton.
        assert per_unit.worst_force_median < 1.0
