"""Property-based tests (hypothesis) on core invariants.

These complement the example-based suites with randomized checks of
the physical and algebraic invariants the stack rests on: passivity
and reciprocity of the RF networks, the duty-cycle Fourier identities,
phase-extraction identities, contact-solver physics, and calibration
round trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.calibration import fit_sensor_model
from repro.core.phase import differential_phase
from repro.rf.elements import shorted_sensor_twoport
from repro.rf.microstrip import MicrostripLine, air_microstrip_impedance
from repro.rf.twoport import abcd_line, abcd_to_s, cascade, input_reflection
from repro.sensor.clock import DutyCycleClock, wiforce_clocking
from repro.units import wrap_phase

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestRFInvariants:
    @settings(max_examples=40, deadline=None)
    @given(z1=st.floats(min_value=20.0, max_value=150.0),
           z2=st.floats(min_value=20.0, max_value=150.0),
           l1=st.floats(min_value=0.0, max_value=3.0),
           l2=st.floats(min_value=0.0, max_value=3.0))
    def test_lossless_cascades_are_unitary(self, z1, z2, l1, l2):
        """Any cascade of lossless lines conserves power (|S| unitary)."""
        gamma = 1j * np.array([1.0])
        network = cascade(abcd_line(z1, gamma, l1), abcd_line(z2, gamma, l2))
        s = abcd_to_s(network)[0]
        np.testing.assert_allclose(s.conj().T @ s, np.eye(2), atol=1e-10)

    @settings(max_examples=40, deadline=None)
    @given(l1=st.floats(min_value=0.01, max_value=3.0),
           load_phase=st.floats(min_value=-3.1, max_value=3.1),
           load_magnitude=st.floats(min_value=0.0, max_value=1.0))
    def test_matched_line_preserves_reflection_magnitude(self, l1,
                                                         load_phase,
                                                         load_magnitude):
        """|Gamma_in| = |Gamma_L| through a lossless *matched* line —
        the reason shorting-point shifts appear purely as phase."""
        gamma = 1j * np.array([1.0])
        s = abcd_to_s(abcd_line(50.0, gamma, l1))
        load = load_magnitude * np.exp(1j * load_phase)
        gamma_in = input_reflection(s, load)
        assert abs(gamma_in[0]) == pytest.approx(load_magnitude,
                                                 abs=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(p1=st.floats(min_value=0.001, max_value=0.039),
           width=st.floats(min_value=0.002, max_value=0.06))
    def test_shorted_sensor_reciprocal_and_passive(self, p1, width):
        line = MicrostripLine()
        p2 = min(p1 + width, 0.079)
        network = shorted_sensor_twoport(line, np.array([900e6, 2.4e9]),
                                         (p1, p2))
        np.testing.assert_allclose(network.s12, network.s21, atol=1e-10)
        for k in range(2):
            s = network.s[k]
            eigenvalues = np.linalg.eigvalsh(np.eye(2) - s.conj().T @ s)
            assert np.all(eigenvalues > -1e-9)  # passive

    @settings(max_examples=40, deadline=None)
    @given(ratio=st.floats(min_value=0.05, max_value=5.0))
    def test_impedance_monotone_in_height_ratio(self, ratio):
        base = air_microstrip_impedance(ratio * 1e-3, 1e-3)
        taller = air_microstrip_impedance(ratio * 1.1e-3, 1e-3)
        assert taller > base


class TestClockInvariants:
    @settings(max_examples=40, deadline=None)
    @given(duty=st.floats(min_value=0.05, max_value=0.95),
           phase=st.floats(min_value=0.0, max_value=0.999),
           harmonic=st.integers(min_value=1, max_value=8))
    def test_fourier_coefficient_matches_fft(self, duty, phase, harmonic):
        clock = DutyCycleClock(1e3, duty=duty, phase=phase)
        n = 32768
        t = (np.arange(n) + 0.5) / (n * clock.frequency)
        spectrum = np.fft.fft(clock.is_on(t).astype(float)) / n
        expected = clock.fourier_coefficient(harmonic)
        assert spectrum[harmonic] == pytest.approx(expected, abs=5e-4)

    @settings(max_examples=20, deadline=None)
    @given(base=st.floats(min_value=100.0, max_value=2000.0))
    def test_wiforce_scheme_always_disjoint(self, base):
        scheme = wiforce_clocking(base)
        assert scheme.overlap_fraction() == 0.0
        scheme.validate()


class TestPhaseInvariants:
    @settings(max_examples=40, deadline=None)
    @given(rotation=st.floats(min_value=-3.0, max_value=3.0),
           channel_slope=st.floats(min_value=-5.0, max_value=5.0),
           amplitude=st.floats(min_value=1e-6, max_value=10.0))
    def test_differential_phase_channel_invariant(self, rotation,
                                                  channel_slope,
                                                  amplitude):
        """The extracted phase is invariant to any static channel."""
        k = np.arange(8)
        reference = np.exp(1j * 0.1 * k)
        observed = reference * np.exp(1j * rotation)
        channel = amplitude * np.exp(1j * channel_slope * k / 8.0)
        plain = differential_phase(reference, observed)
        through_channel = differential_phase(reference * channel,
                                             observed * channel)
        assert through_channel == pytest.approx(plain, abs=1e-9)
        assert plain == pytest.approx(rotation, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(a=st.floats(min_value=-3.0, max_value=3.0),
           b=st.floats(min_value=-3.0, max_value=3.0))
    def test_differential_phase_antisymmetric(self, a, b):
        k = np.arange(8)
        va = np.exp(1j * (0.2 * k + a))
        vb = np.exp(1j * (0.2 * k + b))
        forward = differential_phase(va, vb)
        backward = differential_phase(vb, va)
        assert wrap_phase(forward + backward) == pytest.approx(0.0,
                                                               abs=1e-9)


class TestCalibrationInvariants:
    @settings(max_examples=25, deadline=None)
    @given(c3=st.floats(min_value=-0.01, max_value=0.01),
           c2=st.floats(min_value=-0.05, max_value=0.05),
           c1=st.floats(min_value=-0.3, max_value=0.3),
           c0=st.floats(min_value=-2.0, max_value=2.0))
    def test_cubic_fit_roundtrip(self, c3, c2, c1, c0):
        """Fitting cubic data recovers the cubic exactly (within fit
        conditioning) at interior points."""
        from hypothesis import assume
        forces = np.linspace(1.0, 8.0, 12)
        phases = c3 * forces ** 3 + c2 * forces ** 2 + c1 * forces + c0
        # Samples with exactly zero phase at both ports are treated as
        # pre-contact and dropped by the fit; keep this a pure
        # curve-recovery property.
        assume(np.all(phases != 0.0))
        data = np.stack([phases, phases])
        model = fit_sensor_model([0.02, 0.06], forces, data, data, 900e6)
        probe = 4.321
        expected = c3 * probe ** 3 + c2 * probe ** 2 + c1 * probe + c0
        predicted, _ = model.predict(probe, 0.02)
        assert predicted == pytest.approx(expected, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(t=st.floats(min_value=0.0, max_value=1.0))
    def test_location_interpolation_is_convex(self, t):
        """Interpolated predictions stay between the endpoint curves."""
        forces = np.linspace(1.0, 8.0, 8)
        low = np.linspace(0.0, 1.0, 8)
        high = np.linspace(1.0, 3.0, 8)
        model = fit_sensor_model([0.02, 0.06], forces,
                                 np.stack([low, high]),
                                 np.stack([low, high]), 900e6)
        location = 0.02 + t * 0.04
        predicted, _ = model.predict(4.0, location)
        bounds = sorted([model.predict(4.0, 0.02)[0],
                         model.predict(4.0, 0.06)[0]])
        assert bounds[0] - 1e-9 <= predicted <= bounds[1] + 1e-9


class TestContactInvariants:
    @settings(max_examples=10, deadline=None)
    @given(force=st.floats(min_value=1.0, max_value=8.0))
    def test_mirror_symmetry(self, transducer, force):
        """The sensor is geometrically symmetric: mirrored presses give
        port-swapped shorting points."""
        left = transducer.shorting_points(force, 0.030)
        right = transducer.shorting_points(force, 0.050)
        if left is None or right is None:
            return
        length = transducer.design.length
        assert left[0] == pytest.approx(length - right[1], abs=2e-3)
        assert left[1] == pytest.approx(length - right[0], abs=2e-3)


class TestTagPhysicalInvariants:
    @settings(max_examples=12, deadline=None)
    @given(force=st.floats(min_value=0.0, max_value=8.0),
           location=st.floats(min_value=0.02, max_value=0.06),
           carrier=st.sampled_from([900e6, 2.4e9]))
    def test_tag_reflection_passive(self, tag, force, location, carrier):
        """No switch state ever reflects more power than it receives."""
        from repro.sensor.tag import TagState
        grid = np.array([carrier])
        states = tag.state_reflections(grid, TagState(force, location))
        for value in states.values():
            assert abs(value[0]) <= 1.0 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(force=st.floats(min_value=1.0, max_value=7.5),
           location=st.floats(min_value=0.025, max_value=0.055))
    def test_estimator_roundtrip(self, tag, model_900, force, location):
        """Noiseless phases invert back to the press (within the
        model's cubic-fit error, which grows in the saturating
        high-force regime)."""
        from repro.core.calibration import harmonic_differential_phases
        from repro.core.estimator import ForceLocationEstimator
        phases = harmonic_differential_phases(tag, 900e6, force, location)
        estimate = ForceLocationEstimator(model_900).invert(*phases)
        assert estimate.touched
        assert abs(estimate.force - force) < max(0.5, 0.15 * force)
        assert abs(estimate.location - location) < 2e-3

    @settings(max_examples=15, deadline=None)
    @given(thickness=st.floats(min_value=1e-3, max_value=40e-3),
           permittivity=st.floats(min_value=2.0, max_value=60.0),
           conductivity=st.floats(min_value=0.0, max_value=2.0))
    def test_tissue_slab_passive(self, thickness, permittivity,
                                 conductivity):
        """|t| <= 1 for any physical slab."""
        from repro.channel.tissue import TissueLayer, TissuePhantom
        layer = TissueLayer("custom", thickness,
                            permittivity_override=permittivity,
                            conductivity_override=conductivity)
        t = TissuePhantom([layer]).transmission_coefficient(900e6)
        assert abs(complex(t)) <= 1.0 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(phase_a=st.floats(min_value=-3.0, max_value=3.0),
           phase_b=st.floats(min_value=-3.0, max_value=3.0),
           mag_a=st.floats(min_value=0.0, max_value=1.0),
           mag_b=st.floats(min_value=0.0, max_value=1.0))
    def test_splitter_never_amplifies(self, phase_a, phase_b, mag_a,
                                      mag_b):
        from repro.rf.elements import ideal_splitter_reflection
        a = np.array([mag_a * np.exp(1j * phase_a)])
        b = np.array([mag_b * np.exp(1j * phase_b)])
        assert abs(ideal_splitter_reflection(a, b)[0]) <= 1.0 + 1e-12
