"""Session state: model cache, baseline/drift correction, events."""

from __future__ import annotations

import pytest

from repro.core.tracking import TrackedSample
from repro.errors import ServeError
from repro.serve.protocol import SensorConfig
from repro.serve.session import SensorSession, SessionManager


@pytest.fixture()
def manager(model_900):
    """A session manager whose factory reuses the cached test model
    and counts invocations."""
    calls = []

    def factory(config):
        calls.append(config)
        return model_900

    built = SessionManager(model_factory=factory)
    built.factory_calls = calls
    return built


class TestModelCache:
    def test_sensors_sharing_config_share_one_model(self, manager):
        config = SensorConfig()
        first = manager.session("sensor-a", config)
        second = manager.session("sensor-b", config)
        assert len(manager.factory_calls) == 1
        assert manager.model_builds == 1
        assert manager.model_hits >= 1
        assert first.estimator is second.estimator

    def test_threshold_change_reuses_calibration(self, manager):
        base = SensorConfig()
        stricter = SensorConfig(touch_threshold_deg=9.0)
        a = manager.session("sensor-a", base)
        b = manager.session("sensor-b", stricter)
        # One expensive calibration, two estimators.
        assert manager.model_builds == 1
        assert a.estimator is not b.estimator
        assert a.estimator.model is b.estimator.model

    def test_session_config_mismatch_raises(self, manager):
        manager.session("sensor-a", SensorConfig())
        with pytest.raises(ServeError):
            manager.session("sensor-a",
                            SensorConfig(touch_threshold_deg=9.0))

    def test_get_and_close(self, manager):
        assert manager.get("ghost") is None
        session = manager.session("sensor-a", SensorConfig())
        assert manager.get("sensor-a") is session
        assert manager.close("sensor-a") is session
        assert manager.get("sensor-a") is None
        assert len(manager) == 0


class TestBaselineCorrection:
    def test_no_warmup_passes_phases_through(self, manager):
        session = manager.session("sensor-a", SensorConfig())
        assert session.baseline_ready
        assert session.correct(0.0, 0.3, -0.2) == (0.3, -0.2)

    def test_warmup_fits_reference_and_drift(self, model_900):
        manager = SessionManager(model_factory=lambda config: model_900,
                                 baseline_samples=4)
        session = manager.session("sensor-a", SensorConfig())
        assert not session.baseline_ready
        # Untouched warmup with a pure linear drift ramp: 0.10 rad/s
        # on tone 1, -0.05 rad/s on tone 2, zero intercept.
        for step in range(4):
            time = 0.1 * step
            session.correct(time, 0.10 * time, -0.05 * time)
        assert session.baseline_ready
        drift1, drift2 = session.drift_rates
        assert drift1 == pytest.approx(0.10, abs=1e-9)
        assert drift2 == pytest.approx(-0.05, abs=1e-9)
        # A later untouched sample corrects back to ~zero phases...
        phi1, phi2 = session.correct(1.0, 0.10 * 1.0, -0.05 * 1.0)
        assert phi1 == pytest.approx(0.0, abs=1e-9)
        assert phi2 == pytest.approx(0.0, abs=1e-9)
        # ...and a press on top of the ramp is recovered exactly.
        phi1, phi2 = session.correct(2.0, 0.10 * 2.0 + 0.5,
                                     -0.05 * 2.0 - 0.3)
        assert phi1 == pytest.approx(0.5, abs=1e-9)
        assert phi2 == pytest.approx(-0.3, abs=1e-9)

    def test_single_sample_warmup_uses_mean_reference(self, model_900):
        manager = SessionManager(model_factory=lambda config: model_900,
                                 baseline_samples=1)
        session = manager.session("sensor-a", SensorConfig())
        session.correct(0.0, 0.2, -0.1)
        drift1, drift2 = session.drift_rates
        assert drift1 == 0.0 and drift2 == 0.0
        phi1, phi2 = session.correct(1.0, 0.2, -0.1)
        assert phi1 == pytest.approx(0.0, abs=1e-12)
        assert phi2 == pytest.approx(0.0, abs=1e-12)

    def test_negative_warmup_rejected(self, manager):
        config = SensorConfig()
        with pytest.raises(ServeError):
            SensorSession("s", config, manager.estimator(config),
                          baseline_samples=-1)


class TestHistoryAndEvents:
    @staticmethod
    def _sample(time, touched, force=0.0, location=0.0):
        return TrackedSample(time=time, phi1=0.0, phi2=0.0,
                             touched=touched, force=force,
                             location=location)

    def test_touch_events_from_history(self, manager):
        session = manager.session("sensor-a", SensorConfig())
        for sample in (self._sample(0.0, False),
                       self._sample(0.1, True, 2.0, 0.03),
                       self._sample(0.2, True, 4.0, 0.04),
                       self._sample(0.3, False),
                       self._sample(0.4, True, 1.0, 0.05)):
            session.record(sample)
        events = session.touch_events()
        assert len(events) == 2
        assert events[0].peak_force == 4.0
        assert events[1].onset == 0.4

    def test_empty_history_has_no_events(self, manager):
        session = manager.session("sensor-a", SensorConfig())
        assert session.touch_events() == []

    def test_history_can_be_disabled(self, model_900):
        manager = SessionManager(model_factory=lambda config: model_900,
                                 history=False)
        session = manager.session("sensor-a", SensorConfig())
        session.record(self._sample(0.0, True, 1.0, 0.02))
        assert session.samples == []
