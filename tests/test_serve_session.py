"""Session state: model cache, baseline/drift correction, events."""

from __future__ import annotations

import pytest

from repro.core.tracking import TrackedSample
from repro.errors import ServeError
from repro.serve.protocol import SensorConfig
from repro.serve.session import SensorSession, SessionManager


@pytest.fixture()
def manager(model_900):
    """A session manager whose factory reuses the cached test model
    and counts invocations."""
    calls = []

    def factory(config):
        calls.append(config)
        return model_900

    built = SessionManager(model_factory=factory)
    built.factory_calls = calls
    return built


class TestModelCache:
    def test_sensors_sharing_config_share_one_model(self, manager):
        config = SensorConfig()
        first = manager.session("sensor-a", config)
        second = manager.session("sensor-b", config)
        assert len(manager.factory_calls) == 1
        assert manager.model_builds == 1
        assert manager.model_hits >= 1
        assert first.estimator is second.estimator

    def test_threshold_change_reuses_calibration(self, manager):
        base = SensorConfig()
        stricter = SensorConfig(touch_threshold_deg=9.0)
        a = manager.session("sensor-a", base)
        b = manager.session("sensor-b", stricter)
        # One expensive calibration, two estimators.
        assert manager.model_builds == 1
        assert a.estimator is not b.estimator
        assert a.estimator.model is b.estimator.model

    def test_session_config_mismatch_raises(self, manager):
        manager.session("sensor-a", SensorConfig())
        with pytest.raises(ServeError):
            manager.session("sensor-a",
                            SensorConfig(touch_threshold_deg=9.0))

    def test_get_and_close(self, manager):
        assert manager.get("ghost") is None
        session = manager.session("sensor-a", SensorConfig())
        assert manager.get("sensor-a") is session
        assert manager.close("sensor-a") is session
        assert manager.get("sensor-a") is None
        assert len(manager) == 0


class TestBaselineCorrection:
    def test_no_warmup_passes_phases_through(self, manager):
        session = manager.session("sensor-a", SensorConfig())
        assert session.baseline_ready
        assert session.correct(0.0, 0.3, -0.2) == (0.3, -0.2)

    def test_warmup_fits_reference_and_drift(self, model_900):
        manager = SessionManager(model_factory=lambda config: model_900,
                                 baseline_samples=4)
        session = manager.session("sensor-a", SensorConfig())
        assert not session.baseline_ready
        # Untouched warmup with a pure linear drift ramp: 0.10 rad/s
        # on tone 1, -0.05 rad/s on tone 2, zero intercept.
        for step in range(4):
            time = 0.1 * step
            session.correct(time, 0.10 * time, -0.05 * time)
        assert session.baseline_ready
        drift1, drift2 = session.drift_rates
        assert drift1 == pytest.approx(0.10, abs=1e-9)
        assert drift2 == pytest.approx(-0.05, abs=1e-9)
        # A later untouched sample corrects back to ~zero phases...
        phi1, phi2 = session.correct(1.0, 0.10 * 1.0, -0.05 * 1.0)
        assert phi1 == pytest.approx(0.0, abs=1e-9)
        assert phi2 == pytest.approx(0.0, abs=1e-9)
        # ...and a press on top of the ramp is recovered exactly.
        phi1, phi2 = session.correct(2.0, 0.10 * 2.0 + 0.5,
                                     -0.05 * 2.0 - 0.3)
        assert phi1 == pytest.approx(0.5, abs=1e-9)
        assert phi2 == pytest.approx(-0.3, abs=1e-9)

    def test_single_sample_warmup_uses_mean_reference(self, model_900):
        manager = SessionManager(model_factory=lambda config: model_900,
                                 baseline_samples=1)
        session = manager.session("sensor-a", SensorConfig())
        session.correct(0.0, 0.2, -0.1)
        drift1, drift2 = session.drift_rates
        assert drift1 == 0.0 and drift2 == 0.0
        phi1, phi2 = session.correct(1.0, 0.2, -0.1)
        assert phi1 == pytest.approx(0.0, abs=1e-12)
        assert phi2 == pytest.approx(0.0, abs=1e-12)

    def test_negative_warmup_rejected(self, manager):
        config = SensorConfig()
        with pytest.raises(ServeError):
            SensorSession("s", config, manager.estimator(config),
                          baseline_samples=-1)


class TestHistoryAndEvents:
    @staticmethod
    def _sample(time, touched, force=0.0, location=0.0):
        return TrackedSample(time=time, phi1=0.0, phi2=0.0,
                             touched=touched, force=force,
                             location=location)

    def test_touch_events_from_history(self, manager):
        session = manager.session("sensor-a", SensorConfig())
        for sample in (self._sample(0.0, False),
                       self._sample(0.1, True, 2.0, 0.03),
                       self._sample(0.2, True, 4.0, 0.04),
                       self._sample(0.3, False),
                       self._sample(0.4, True, 1.0, 0.05)):
            session.record(sample)
        events = session.touch_events()
        assert len(events) == 2
        assert events[0].peak_force == 4.0
        assert events[1].onset == 0.4

    def test_empty_history_has_no_events(self, manager):
        session = manager.session("sensor-a", SensorConfig())
        assert session.touch_events() == []

    def test_history_can_be_disabled(self, model_900):
        manager = SessionManager(model_factory=lambda config: model_900,
                                 history=False)
        session = manager.session("sensor-a", SensorConfig())
        session.record(self._sample(0.0, True, 1.0, 0.02))
        assert session.samples == []


class TestEviction:
    @staticmethod
    def _manager(model, clock=None, **kwargs):
        return SessionManager(model_factory=lambda config: model,
                              clock=clock, **kwargs)

    def test_lru_cap_evicts_least_recently_used(self, model_900):
        manager = self._manager(model_900, max_sessions=2)
        manager.session("a", SensorConfig())
        manager.session("b", SensorConfig())
        manager.session("a", SensorConfig())  # refresh a -> b is LRU
        manager.session("c", SensorConfig())
        assert manager.get("b") is None
        assert manager.get("a") is not None
        assert manager.get("c") is not None
        assert len(manager) == 2
        assert manager.evictions == 1

    def test_idle_ttl_evicts_stale_sessions(self, model_900):
        now = [0.0]
        manager = self._manager(model_900, clock=lambda: now[0],
                                idle_ttl_s=10.0)
        manager.session("a", SensorConfig())
        now[0] = 5.0
        manager.session("b", SensorConfig())
        now[0] = 16.0  # a idle 16 s > TTL; b idle 11 s > TTL
        manager.session("c", SensorConfig())
        assert manager.get("a") is None
        assert manager.get("b") is None
        assert manager.get("c") is not None
        assert manager.evictions == 2

    def test_access_refreshes_idle_clock(self, model_900):
        now = [0.0]
        manager = self._manager(model_900, clock=lambda: now[0],
                                idle_ttl_s=10.0)
        manager.session("a", SensorConfig())
        now[0] = 8.0
        manager.session("a", SensorConfig())  # touch before the TTL
        now[0] = 15.0  # only 7 s since the touch
        manager.session("b", SensorConfig())
        assert manager.get("a") is not None
        assert manager.evictions == 0

    def test_eviction_counter_lands_in_registry(self, model_900):
        from repro.obs.registry import observed

        with observed() as registry:
            manager = self._manager(model_900, max_sessions=1)
            manager.session("a", SensorConfig())
            manager.session("b", SensorConfig())
        counters = registry.snapshot()["counters"]
        assert counters["serve.session.evictions"] == 1

    def test_evicted_session_state_is_discarded(self, model_900):
        manager = self._manager(model_900, max_sessions=1)
        session = manager.session("a", SensorConfig())
        session.record(TrackedSample(time=0.0, phi1=0.1, phi2=0.2,
                                     touched=True, force=1.0,
                                     location=0.03))
        manager.session("b", SensorConfig())
        reopened = manager.session("a", SensorConfig())
        assert reopened is not session
        assert reopened.samples == []

    def test_eviction_bounds_are_validated(self, model_900):
        with pytest.raises(ServeError):
            self._manager(model_900, max_sessions=0)
        with pytest.raises(ServeError):
            self._manager(model_900, idle_ttl_s=0.0)

    def test_service_exposes_eviction_knobs(self, model_900):
        import asyncio

        from repro.serve import EstimateRequest, InferenceService

        service = InferenceService(
            model_factory=lambda config: model_900, max_sessions=2)
        config = SensorConfig()
        for index, sensor in enumerate("abc"):
            asyncio.run(service.estimate(EstimateRequest(
                sensor_id=sensor, sequence=index, time=0.0,
                phi1=0.1, phi2=0.1, config=config)))
        snapshot = service.telemetry_snapshot()
        assert snapshot["sessions"]["count"] == 2
        assert snapshot["sessions"]["evictions"] == 1
