"""Exception-hierarchy tests: one catchable root, meaningful subtypes."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("subtype", [
        errors.ConfigurationError,
        errors.MechanicsError,
        errors.ContactSolverError,
        errors.RFError,
        errors.SensorError,
        errors.ClockingError,
        errors.ChannelError,
        errors.ReaderError,
        errors.DynamicRangeError,
        errors.CalibrationError,
        errors.EstimationError,
    ])
    def test_all_derive_from_root(self, subtype):
        assert issubclass(subtype, errors.WiForceError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_contact_solver_is_mechanics(self):
        assert issubclass(errors.ContactSolverError, errors.MechanicsError)

    def test_clocking_is_sensor(self):
        assert issubclass(errors.ClockingError, errors.SensorError)

    def test_dynamic_range_is_reader(self):
        assert issubclass(errors.DynamicRangeError, errors.ReaderError)

    def test_root_catches_subtype(self):
        with pytest.raises(errors.WiForceError):
            raise errors.DynamicRangeError("saturated")
