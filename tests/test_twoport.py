"""Two-port network algebra tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RFError
from repro.rf.twoport import (
    TwoPort,
    abcd_line,
    abcd_series,
    abcd_shunt,
    abcd_to_s,
    cascade,
    input_reflection,
    mismatch_reflection,
    s_to_abcd,
)

Z0 = 50.0


def lossless_line(beta_l: float, z0: float = 75.0) -> np.ndarray:
    return abcd_line(z0, 1j * np.array([beta_l]), 1.0)


class TestBuilders:
    def test_series_zero_is_identity(self):
        matrix = abcd_series(0.0)
        np.testing.assert_allclose(matrix, np.eye(2))

    def test_shunt_infinite_is_identity(self):
        matrix = abcd_shunt(1e18)
        np.testing.assert_allclose(matrix, np.eye(2), atol=1e-15)

    def test_shunt_rejects_zero(self):
        with pytest.raises(RFError):
            abcd_shunt(0.0)

    def test_line_zero_length_is_identity(self):
        matrix = abcd_line(50.0, 1j * np.array([10.0]), 0.0)
        np.testing.assert_allclose(matrix[0], np.eye(2), atol=1e-15)

    def test_line_rejects_negative_length(self):
        with pytest.raises(RFError):
            abcd_line(50.0, 1j, -0.1)

    def test_quarter_wave_inverts_impedance(self):
        matrix = lossless_line(np.pi / 2.0)
        s = abcd_to_s(matrix, Z0)
        # A quarter-wave 75-ohm line transforms a 50-ohm load to
        # 75^2/50 = 112.5 ohm.
        gamma_in = input_reflection(s, 0.0)
        z_in = Z0 * (1 + gamma_in) / (1 - gamma_in)
        assert z_in[0].real == pytest.approx(112.5, rel=1e-9)

    def test_lossless_line_determinant_unity(self):
        matrix = lossless_line(1.234)
        det = np.linalg.det(matrix[0])
        assert det == pytest.approx(1.0, abs=1e-12)


class TestConversions:
    @settings(max_examples=30, deadline=None)
    @given(beta_l=st.floats(min_value=0.05, max_value=3.0),
           z_line=st.floats(min_value=20.0, max_value=150.0))
    def test_abcd_s_roundtrip(self, beta_l, z_line):
        matrix = abcd_line(z_line, 1j * np.array([beta_l]), 1.0)
        back = s_to_abcd(abcd_to_s(matrix, Z0), Z0)
        np.testing.assert_allclose(back, matrix, atol=1e-9)

    def test_matched_line_s11_zero(self):
        matrix = abcd_line(Z0, 1j * np.array([1.0]), 1.0)
        s = abcd_to_s(matrix, Z0)
        assert abs(s[0, 0, 0]) < 1e-12

    def test_matched_line_s21_phase(self):
        beta_l = 0.7
        matrix = abcd_line(Z0, 1j * np.array([beta_l]), 1.0)
        s = abcd_to_s(matrix, Z0)
        assert np.angle(s[0, 1, 0]) == pytest.approx(-beta_l)

    def test_reciprocity_of_line(self):
        s = abcd_to_s(lossless_line(0.9), Z0)
        assert s[0, 0, 1] == pytest.approx(s[0, 1, 0])

    def test_lossless_unitarity(self):
        s = abcd_to_s(lossless_line(0.9), Z0)[0]
        np.testing.assert_allclose(s.conj().T @ s, np.eye(2), atol=1e-12)

    def test_rejects_bad_reference(self):
        with pytest.raises(RFError):
            abcd_to_s(lossless_line(1.0), 0.0)


class TestCascade:
    def test_cascade_of_lines_adds_length(self):
        half = abcd_line(Z0, 1j * np.array([0.4]), 1.0)
        full = abcd_line(Z0, 1j * np.array([0.8]), 1.0)
        np.testing.assert_allclose(cascade(half, half), full, atol=1e-12)

    def test_cascade_identity(self):
        matrix = lossless_line(0.5)
        identity = np.eye(2)[None, :, :]
        np.testing.assert_allclose(cascade(matrix, identity), matrix)

    def test_cascade_requires_matrices(self):
        with pytest.raises(RFError):
            cascade()


class TestInputReflection:
    def test_short_through_line_rotates(self):
        beta_l = 0.6
        s = abcd_to_s(abcd_line(Z0, 1j * np.array([beta_l]), 1.0), Z0)
        gamma = input_reflection(s, -1.0)
        expected = -np.exp(-2j * beta_l)
        assert gamma[0] == pytest.approx(expected)

    def test_open_through_line_rotates(self):
        beta_l = 0.6
        s = abcd_to_s(abcd_line(Z0, 1j * np.array([beta_l]), 1.0), Z0)
        gamma = input_reflection(s, 1.0)
        assert gamma[0] == pytest.approx(np.exp(-2j * beta_l))

    def test_matched_load_no_reflection(self):
        s = abcd_to_s(abcd_line(Z0, 1j * np.array([0.6]), 1.0), Z0)
        assert abs(input_reflection(s, 0.0)[0]) < 1e-12


class TestMismatchReflection:
    def test_matched_is_zero(self):
        assert mismatch_reflection(50.0) == pytest.approx(0.0)

    def test_higher_impedance_positive(self):
        assert mismatch_reflection(75.0).real > 0.0

    def test_magnitude_below_one(self):
        assert abs(mismatch_reflection(5.0)) < 1.0


class TestTwoPortClass:
    def make_twoport(self, beta_l=0.5):
        frequency = np.linspace(1e9, 2e9, 5)
        abcd = abcd_line(75.0, 1j * 2 * np.pi * frequency / 3e8, 0.05)
        return TwoPort(frequency, abcd_to_s(abcd, Z0), Z0)

    def test_shape_validation(self):
        with pytest.raises(RFError):
            TwoPort(np.array([1e9, 2e9]), np.zeros((3, 2, 2)))

    def test_accessors(self):
        network = self.make_twoport()
        assert network.s11.shape == (5,)
        assert network.s21.shape == (5,)

    def test_flip_swaps_ports(self):
        network = self.make_twoport()
        flipped = network.flipped()
        np.testing.assert_allclose(flipped.s11, network.s22)
        np.testing.assert_allclose(flipped.s21, network.s12)

    def test_cascade_with_matches_abcd(self):
        frequency = np.linspace(1e9, 2e9, 5)
        gamma = 1j * 2 * np.pi * frequency / 3e8
        a = TwoPort(frequency, abcd_to_s(abcd_line(75.0, gamma, 0.03), Z0))
        b = TwoPort(frequency, abcd_to_s(abcd_line(75.0, gamma, 0.02), Z0))
        combined = a.cascade_with(b)
        direct = TwoPort(frequency, abcd_to_s(abcd_line(75.0, gamma, 0.05),
                                              Z0))
        np.testing.assert_allclose(combined.s, direct.s, atol=1e-10)

    def test_cascade_rejects_mismatched_grids(self):
        a = self.make_twoport()
        frequency = np.linspace(1e9, 3e9, 5)
        abcd = abcd_line(75.0, 1j * 2 * np.pi * frequency / 3e8, 0.05)
        b = TwoPort(frequency, abcd_to_s(abcd, Z0), Z0)
        with pytest.raises(RFError):
            a.cascade_with(b)
