"""UWB sounder, viscoelastic creep and gesture-layer tests."""

import numpy as np
import pytest

from repro.channel.propagation import BackscatterLink
from repro.core.calibration import harmonic_differential_phases
from repro.core.harmonics import HarmonicExtractor, integer_period_group_length
from repro.core.phase import differential_phase
from repro.core.tracking import TrackedSample
from repro.errors import ConfigurationError
from repro.experiments.scenarios import fast_transducer
from repro.hci.gestures import GestureClassifier, GestureKind
from repro.mechanics.viscoelastic import StandardLinearSolid
from repro.sensor.viscoelastic import CreepingTransducer
from repro.reader.uwb import UWBSounder, UWBSounderConfig
from repro.sensor.tag import TagState, WiForceTag


class TestUWBConfig:
    def test_estimate_period(self):
        config = UWBSounderConfig(pulse_repetition_interval=1e-6,
                                  pulses_per_estimate=57)
        assert config.estimate_period == pytest.approx(57e-6)

    def test_nyquist_covers_tones(self):
        config = UWBSounderConfig()
        assert config.max_harmonic_frequency > 4e3

    def test_bin_frequencies_span_band(self):
        config = UWBSounderConfig(carrier_frequency=4e9, bandwidth=500e6,
                                  bins=256)
        bins = config.bin_frequencies()
        assert bins.size == 256
        assert bins[0] == pytest.approx(4e9 - 250e6)

    def test_rejects_bandwidth_over_band(self):
        with pytest.raises(ConfigurationError):
            UWBSounderConfig(carrier_frequency=1e9, bandwidth=3e9)


class TestUWBSounder:
    @pytest.fixture(scope="class")
    def setup(self):
        tag = WiForceTag(fast_transducer())
        config = UWBSounderConfig()
        sounder = UWBSounder(config, tag, BackscatterLink(),
                             rng=np.random.default_rng(6))
        return tag, config, sounder

    def test_capture_shape(self, setup):
        _, config, sounder = setup
        stream = sounder.capture(TagState(), 50)
        assert stream.estimates.shape == (50, config.bins)

    def test_differential_phase_recovered(self, setup):
        """The waveform-agnostic claim extends to impulse UWB."""
        tag, config, sounder = setup
        group = integer_period_group_length(config.estimate_period, 1e3)
        tones = (tag.clocking.readout_port1, tag.clocking.readout_port2)
        extractor = HarmonicExtractor(tones=tones, group_length=group)
        base = sounder.capture(TagState(), 2 * group)
        touch = sounder.capture(TagState(4.0, 0.040), 2 * group,
                                start_time=base.duration)
        b = extractor.extract(base)
        t = extractor.extract(touch)
        phi1 = differential_phase(b[tones[0]].values.mean(axis=0),
                                  t[tones[0]].values.mean(axis=0))
        expected = harmonic_differential_phases(
            tag, config.carrier_frequency, 4.0, 0.040)[0]
        assert phi1 == pytest.approx(expected, abs=np.radians(6.0))

    def test_rejects_zero_estimates(self, setup):
        _, _, sounder = setup
        with pytest.raises(ConfigurationError):
            sounder.capture(TagState(), 0)


class TestStandardLinearSolid:
    def test_instantaneous_at_zero(self):
        sls = StandardLinearSolid()
        assert sls.modulus(0.0) == pytest.approx(
            sls.instantaneous_modulus)

    def test_relaxes_to_equilibrium(self):
        sls = StandardLinearSolid()
        assert sls.modulus(100.0) == pytest.approx(
            sls.equilibrium_modulus, rel=1e-6)

    def test_monotone_relaxation(self):
        sls = StandardLinearSolid()
        times = np.linspace(0.0, 2.0, 20)
        moduli = [sls.modulus(float(t)) for t in times]
        assert all(b <= a for a, b in zip(moduli, moduli[1:]))

    def test_settling_time_formula(self):
        sls = StandardLinearSolid(relaxation_time=0.35)
        assert sls.settling_time(0.05) == pytest.approx(
            -0.35 * np.log(0.05))

    def test_settling_in_paper_band(self):
        """Relaxation settles on the paper's 0.5-1 s timescale."""
        assert 0.3 < StandardLinearSolid().settling_time() < 2.0

    def test_rejects_inverted_moduli(self):
        with pytest.raises(ConfigurationError):
            StandardLinearSolid(instantaneous_modulus=50e3,
                                equilibrium_modulus=100e3)


@pytest.mark.integration
class TestCreepingTransducer:
    @pytest.fixture(scope="class")
    def creeping(self):
        return CreepingTransducer(relaxation_levels=2,
                                  force_points=10, location_points=9)

    def test_phase_creeps_then_settles(self, creeping):
        trace = creeping.creep_trace(900e6, 4.0, 0.040,
                                     np.array([0.0, 0.2, 0.5, 1.0, 3.0]))
        # The phase moves early and converges late.
        early = abs(trace[1] - trace[0])
        late = abs(trace[-1] - trace[-2])
        assert late < early or early == 0.0
        assert trace[-1] == pytest.approx(trace[-2], abs=np.radians(0.5))

    def test_creep_magnitude_small_but_nonzero(self, creeping):
        creep = creeping.creep_magnitude_deg(900e6, 4.0, 0.040)
        assert 0.0 < creep < 20.0

    def test_rejects_single_level(self):
        with pytest.raises(ConfigurationError):
            CreepingTransducer(relaxation_levels=1)


def track(points):
    """points: list of (time, force, location); force 0 = untouched."""
    return [TrackedSample(time=t, phi1=0.0, phi2=0.0, touched=f > 0,
                          force=f, location=x)
            for t, f, x in points]


class TestGestureClassifier:
    def test_tap(self):
        samples = track([(0.0, 0, 0), (0.04, 3.0, 0.04),
                         (0.08, 3.0, 0.04), (0.12, 0, 0)])
        gestures = GestureClassifier().classify(samples)
        assert [g.kind for g in gestures] == [GestureKind.TAP]

    def test_hold(self):
        points = [(0.0, 0, 0)] + [
            (0.04 * i, 3.0, 0.04) for i in range(1, 15)] + [(0.7, 0, 0)]
        gestures = GestureClassifier().classify(track(points))
        assert [g.kind for g in gestures] == [GestureKind.HOLD]
        assert gestures[0].mean_force == pytest.approx(3.0)

    def test_press_ramp(self):
        points = [(0.0, 0, 0)] + [
            (0.04 * i, 0.5 * i, 0.04) for i in range(1, 15)]
        gestures = GestureClassifier().classify(track(points))
        assert [g.kind for g in gestures] == [GestureKind.PRESS_RAMP]

    def test_slide(self):
        points = [(0.0, 0, 0)] + [
            (0.04 * i, 3.0, 0.02 + 0.003 * i) for i in range(1, 15)]
        gestures = GestureClassifier().classify(track(points))
        assert [g.kind for g in gestures] == [GestureKind.SLIDE]
        assert gestures[0].travel > 0

    def test_multiple_gestures_segmented(self):
        points = ([(0.0, 0, 0), (0.04, 3.0, 0.04), (0.08, 3.0, 0.04),
                   (0.12, 0, 0), (0.16, 0, 0)]
                  + [(0.2 + 0.04 * i, 2.0, 0.03 + 0.004 * i)
                     for i in range(10)])
        gestures = GestureClassifier().classify(track(points))
        assert len(gestures) == 2
        assert gestures[0].kind == GestureKind.TAP
        assert gestures[1].kind == GestureKind.SLIDE

    def test_short_blips_debounced(self):
        samples = track([(0.0, 0, 0), (0.04, 3.0, 0.04), (0.08, 0, 0)])
        assert GestureClassifier().classify(samples) == []

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ConfigurationError):
            GestureClassifier(tap_max_duration=0.0)
        with pytest.raises(ConfigurationError):
            GestureClassifier(min_samples=1)


@pytest.mark.integration
class TestSlideEndToEnd:
    def test_slide_tracked_through_the_stack(self):
        """A finger sliding along the strip is tracked and classified
        — the location-continuum claim in motion."""
        from repro.core.tracking import StreamingTracker
        from repro.experiments.scenarios import calibrated_model
        from repro.reader.sounder import FrameLevelSounder, concatenate_streams
        from repro.reader.waveform import OFDMSounderConfig

        rng = np.random.default_rng(91)
        config = OFDMSounderConfig(carrier_frequency=900e6)
        tag = WiForceTag(fast_transducer(), clock_offset_ppm=20.0)
        sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                    rng=rng)
        group = integer_period_group_length(config.frame_period, 1e3)
        extractor = HarmonicExtractor(
            tones=(tag.clocking.readout_port1,
                   tag.clocking.readout_port2),
            group_length=group)
        model = calibrated_model(900e6, fast=True)

        streams = []
        clock = 0.0
        segments = [(TagState(), 4)]
        for position in np.linspace(0.025, 0.055, 6):
            segments.append((TagState(3.0, float(position)), 1))
        for state, groups in segments:
            stream = sounder.capture(state, groups * group,
                                     start_time=clock)
            clock += stream.frames * config.frame_period
            streams.append(stream)
        tracker = StreamingTracker(model, extractor, baseline_groups=4)
        samples = tracker.process(concatenate_streams(*streams))
        gestures = GestureClassifier().classify(samples)
        assert len(gestures) == 1
        assert gestures[0].kind == GestureKind.SLIDE
        assert gestures[0].travel == pytest.approx(0.03, abs=5e-3)
