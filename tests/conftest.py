"""Shared fixtures.

The expensive objects (contact-map transducers, calibrated models) are
process-cached by repro.experiments.scenarios; the fixtures here just
give tests tidy names for them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.scenarios import (
    calibrated_model,
    fast_transducer,
    thin_trace_transducer,
)
from repro.mechanics.beam import BeamSection, CompositeBeam
from repro.mechanics.materials import COPPER, ECOFLEX_0030
from repro.rf.microstrip import MicrostripLine
from repro.sensor.geometry import default_sensor_design
from repro.sensor.tag import WiForceTag


@pytest.fixture(scope="session")
def design():
    """The paper's default sensor design."""
    return default_sensor_design()


@pytest.fixture(scope="session")
def line():
    """The paper's microstrip geometry."""
    return MicrostripLine()


@pytest.fixture(scope="session")
def transducer():
    """Reduced-resolution transducer (process-cached)."""
    return fast_transducer()


@pytest.fixture(scope="session")
def thin_transducer():
    """Bare-trace transducer for transduction ablations."""
    return thin_trace_transducer()


@pytest.fixture(scope="session")
def tag(transducer):
    """A default tag over the fast transducer."""
    return WiForceTag(transducer)


@pytest.fixture(scope="session")
def model_900():
    """Harmonic-domain calibration at 900 MHz (fast)."""
    return calibrated_model(900e6, fast=True)


@pytest.fixture(scope="session")
def composite_beam():
    """The default laminated beam."""
    return CompositeBeam(
        [
            BeamSection(COPPER, width=2.5e-3, thickness=35e-6),
            BeamSection(ECOFLEX_0030, width=10e-3, thickness=10e-3),
        ],
        length=80e-3,
    )


@pytest.fixture()
def rng():
    """Deterministic random source per test."""
    return np.random.default_rng(1234)
