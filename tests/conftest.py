"""Shared fixtures.

The expensive objects (contact-map transducers, calibrated models) are
process-cached by repro.experiments.scenarios; the fixtures here just
give tests tidy names for them.

The artifact cache is redirected to a per-session temp directory (see
``_hermetic_artifact_cache``) so the suite neither reads a developer's
warm ``~/.cache/repro`` nor leaves artifacts behind — every run
exercises the true cold path exactly once, then its own warm path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_artifact_cache(tmp_path_factory):
    """Point REPRO_CACHE_DIR at a fresh temp dir for the whole run.

    An explicit ``REPRO_CACHE_DIR`` in the environment wins (CI uses
    this to persist the cache across runs).
    """
    from repro.cache import CACHE_DIR_ENV

    if os.environ.get(CACHE_DIR_ENV, "").strip():
        yield
        return
    directory = tmp_path_factory.mktemp("artifact-cache")
    os.environ[CACHE_DIR_ENV] = str(directory)
    try:
        yield
    finally:
        os.environ.pop(CACHE_DIR_ENV, None)

from repro.experiments.scenarios import (
    calibrated_model,
    fast_transducer,
    thin_trace_transducer,
)
from repro.mechanics.beam import BeamSection, CompositeBeam
from repro.mechanics.materials import COPPER, ECOFLEX_0030
from repro.rf.microstrip import MicrostripLine
from repro.sensor.geometry import default_sensor_design
from repro.sensor.tag import WiForceTag


@pytest.fixture(scope="session")
def design():
    """The paper's default sensor design."""
    return default_sensor_design()


@pytest.fixture(scope="session")
def line():
    """The paper's microstrip geometry."""
    return MicrostripLine()


@pytest.fixture(scope="session")
def transducer():
    """Reduced-resolution transducer (process-cached)."""
    return fast_transducer()


@pytest.fixture(scope="session")
def thin_transducer():
    """Bare-trace transducer for transduction ablations."""
    return thin_trace_transducer()


@pytest.fixture(scope="session")
def tag(transducer):
    """A default tag over the fast transducer."""
    return WiForceTag(transducer)


@pytest.fixture(scope="session")
def model_900():
    """Harmonic-domain calibration at 900 MHz (fast)."""
    return calibrated_model(900e6, fast=True)


@pytest.fixture(scope="session")
def composite_beam():
    """The default laminated beam."""
    return CompositeBeam(
        [
            BeamSection(COPPER, width=2.5e-3, thickness=35e-6),
            BeamSection(ECOFLEX_0030, width=10e-3, thickness=10e-3),
        ],
        length=80e-3,
    )


@pytest.fixture()
def rng():
    """Deterministic random source per test."""
    return np.random.default_rng(1234)
