"""The learned surrogate backend: fallback contract and parity.

The contracts under test:

* **Fallback is bit-exact.** Any sample the surrogate is not confident
  about — outside the training phase envelope, forward residual over
  the fitted bound, or carrying a ``location_hint`` — must return
  exactly what the grid oracle returns, bit for bit.
* **In-domain accuracy is bounded.** On the workload it was trained
  for, the learned inverse stays within a declared error budget of the
  grid oracle.
* **The seam is total.** The backend registry, the serve wire config,
  the load profiles, and the gateway tenants all accept exactly
  :data:`repro.core.estimator.ESTIMATOR_BACKENDS` and reject anything
  else with their layer's error type.

The suite trains a deliberately small surrogate (one power level, a
coarse grid) so the cold path fits in the hermetic test cache budget;
the full-resolution evaluation lives in
``benchmarks/test_perf_surrogate.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimator import (
    ESTIMATOR_BACKENDS,
    ForceLocationEstimator,
    build_estimator,
)
from repro.errors import (
    ConfigurationError,
    EstimationError,
    ProtocolError,
    ServeError,
    SurrogateError,
)
from repro.obs import observed
from repro.surrogate import (
    DatasetSpec,
    SurrogateEstimator,
    SurrogateInverse,
    TrainingDataset,
    build_dataset,
    forward_residual,
    train_surrogate,
)

#: Coarse one-power sweep: cold-trains in about a second yet lands
#: near-grid accuracy, so every test here stays hermetic and fast.
SMALL_SPEC = DatasetSpec(force_points=10, location_points=11,
                         tx_power_sweep=(16.0,), repeats=1,
                         chunk_captures=32, baseline_groups=16)

phase = st.floats(min_value=-np.pi, max_value=np.pi,
                  allow_nan=False, allow_infinity=False)


@pytest.fixture(scope="module")
def surrogate(model_900):
    """The small trained inverse (cold once per test session)."""
    return train_surrogate(model_900, SMALL_SPEC)


@pytest.fixture(scope="module")
def amortized(model_900, surrogate):
    return SurrogateEstimator(model_900, surrogate)


@pytest.fixture(scope="module")
def grid(model_900):
    return ForceLocationEstimator(model_900)


def _assert_rows_equal(a, b, rows_a, rows_b):
    assert np.array_equal(a.force[rows_a], b.force[rows_b])
    assert np.array_equal(a.location[rows_a], b.location[rows_b])
    assert np.array_equal(a.residual[rows_a], b.residual[rows_b])
    assert np.array_equal(a.touched[rows_a], b.touched[rows_b])


class TestDatasetSpec:
    def test_samples_counts_the_full_grid(self):
        assert SMALL_SPEC.samples == 10 * 11 * 1 * 1

    @pytest.mark.parametrize("overrides", [
        {"force_points": 1},
        {"location_points": 1},
        {"tx_power_sweep": ()},
        {"repeats": 0},
        {"chunk_captures": 0},
        {"baseline_groups": 1},
    ])
    def test_rejects_degenerate_sweeps(self, overrides):
        from dataclasses import replace
        with pytest.raises(SurrogateError):
            replace(SMALL_SPEC, **overrides)

    def test_cache_key_is_plain_json_scalars(self):
        key = SMALL_SPEC.cache_key()
        assert key["chunk_captures"] == 32
        assert key["baseline_groups"] == 16
        for value in key.values():
            assert isinstance(value, (int, float, bool, list))


class TestDataset:
    def test_cache_round_trip_is_bit_identical(self):
        """Second build loads the decoded artifact — same arrays."""
        first = build_dataset(SMALL_SPEC)
        second = build_dataset(SMALL_SPEC)
        assert np.array_equal(first.phi1, second.phi1)
        assert np.array_equal(first.phi2, second.phi2)
        assert np.array_equal(first.force, second.force)
        assert np.array_equal(first.location, second.location)
        assert len(first) == SMALL_SPEC.samples

    def test_serialization_rejects_unknown_version(self):
        payload = build_dataset(SMALL_SPEC).to_dict()
        payload["version"] = 99
        with pytest.raises(SurrogateError, match="version 99"):
            TrainingDataset.from_dict(payload)


class TestSerialization:
    def test_model_round_trip_predicts_identically(self, surrogate):
        restored = SurrogateInverse.from_dict(surrogate.to_dict())
        phi1 = np.linspace(-2.4, -1.0, 32)
        phi2 = np.linspace(-2.3, -1.1, 32)
        np.testing.assert_array_equal(
            np.stack(surrogate.predict_batch(phi1, phi2)),
            np.stack(restored.predict_batch(phi1, phi2)))
        assert restored.residual_bound == surrogate.residual_bound
        assert restored.train_samples == surrogate.train_samples

    def test_model_rejects_unknown_version(self, surrogate):
        payload = surrogate.to_dict()
        payload["version"] = 99
        with pytest.raises(SurrogateError, match="version 99"):
            SurrogateInverse.from_dict(payload)

    def test_training_is_memoized(self, model_900, surrogate):
        """A second train with the same key loads from the cache."""
        again = train_surrogate(model_900, SMALL_SPEC)
        assert again.to_dict() == surrogate.to_dict()


class TestFallbackContract:
    @settings(max_examples=25, deadline=None)
    @given(pairs=st.lists(st.tuples(phase, phase), min_size=1,
                          max_size=6))
    def test_unconfident_rows_match_grid_bit_exactly(
            self, model_900, pairs):
        """Property: wherever the confidence gate rejects, the
        surrogate estimator IS the grid estimator."""
        surrogate = train_surrogate(model_900, SMALL_SPEC)
        amortized = SurrogateEstimator(model_900, surrogate)
        grid = ForceLocationEstimator(model_900)
        phi1 = np.array([p for p, _ in pairs])
        phi2 = np.array([p for _, p in pairs])
        a = amortized.invert_batch(phi1, phi2)
        g = grid.invert_batch(phi1, phi2)
        predicted = surrogate.predict_batch(phi1, phi2)
        residuals = forward_residual(model_900, predicted[0],
                                     predicted[1], phi1, phi2)
        confident = (surrogate.in_domain(phi1, phi2)
                     & (residuals <= surrogate.residual_bound))
        unconfident = np.flatnonzero(~confident)
        _assert_rows_equal(a, g, unconfident, unconfident)
        assert np.array_equal(a.touched, g.touched)

    def test_out_of_envelope_batch_is_pure_grid(self, amortized, grid,
                                                surrogate):
        """Positive phases sit far outside the training envelope, so
        every pressed row takes the fallback — full bit-exactness."""
        phi1 = np.linspace(0.5, 2.5, 16)
        phi2 = np.linspace(0.4, 2.6, 16)
        assert not surrogate.in_domain(phi1, phi2).any()
        a = amortized.invert_batch(phi1, phi2)
        g = grid.invert_batch(phi1, phi2)
        _assert_rows_equal(a, g, slice(None), slice(None))

    def test_location_hint_always_takes_the_grid(self, model_900,
                                                 amortized, grid):
        """The +/- 10 mm prior has no surrogate equivalent."""
        phi1, phi2 = model_900.predict_batch(np.full(8, 4.0),
                                             np.full(8, 0.045))
        a = amortized.invert_batch(phi1, phi2, location_hint=0.045)
        g = grid.invert_batch(phi1, phi2, location_hint=0.045)
        _assert_rows_equal(a, g, slice(None), slice(None))

    def test_untouched_rows_are_gated_like_grid(self, amortized, grid):
        quiet = np.radians(0.5)
        batch = amortized.invert_batch(np.array([quiet]),
                                       np.array([quiet]))
        assert not batch.touched[0]
        assert batch.force[0] == 0.0 and batch.location[0] == 0.0
        reference = grid.invert_batch(np.array([quiet]),
                                      np.array([quiet]))
        _assert_rows_equal(batch, reference, slice(None), slice(None))

    def test_scalar_invert_matches_batch(self, model_900, amortized):
        rng = np.random.default_rng(11)
        forces = rng.uniform(0.5, 8.0, 12)
        locations = rng.uniform(model_900.locations[0],
                                model_900.locations[-1], 12)
        phi1, phi2 = model_900.predict_batch(forces, locations)
        batch = amortized.invert_batch(phi1, phi2)
        for i in range(12):
            scalar = amortized.invert(float(phi1[i]), float(phi2[i]))
            assert scalar.force == batch.force[i]
            assert scalar.location == batch.location[i]
            assert scalar.residual == batch.residual[i]
            assert scalar.touched == bool(batch.touched[i])

    def test_counters_split_predictions_and_fallbacks(
            self, model_900, amortized):
        in_phi1, in_phi2 = model_900.predict_batch(np.full(4, 4.0),
                                                   np.full(4, 0.040))
        out_phi = np.full(2, 1.5)  # outside the training envelope
        phi1 = np.concatenate([in_phi1, out_phi])
        phi2 = np.concatenate([in_phi2, out_phi])
        with observed() as registry:
            amortized.invert_batch(phi1, phi2)
            counters = registry.snapshot()["counters"]
        assert counters["surrogate.predictions"] == 4
        assert counters["surrogate.fallbacks"] == 2


class TestInDomainAccuracy:
    def test_error_budget_vs_grid(self, model_900, amortized, grid):
        """p95 errors stay within the unit-suite budget of the oracle.

        The budget here is looser than the benchmark caps because the
        test surrogate trains on a deliberately coarse one-power sweep;
        ``benchmarks/test_perf_surrogate.py`` gates the real numbers.
        """
        rng = np.random.default_rng(3)
        count = 256
        forces = rng.uniform(0.5, 8.0, count)
        locations = rng.uniform(float(model_900.locations[0]),
                                float(model_900.locations[-1]), count)
        phi1, phi2 = model_900.predict_batch(forces, locations)
        phi1 = phi1 + rng.normal(0.0, np.radians(1.0), count)
        phi2 = phi2 + rng.normal(0.0, np.radians(1.0), count)
        a = amortized.invert_batch(phi1, phi2)
        g = grid.invert_batch(phi1, phi2)
        force_p95 = np.quantile(np.abs(a.force - forces), 0.95)
        grid_force_p95 = np.quantile(np.abs(g.force - forces), 0.95)
        location_p95 = np.quantile(np.abs(a.location - locations), 0.95)
        grid_location_p95 = np.quantile(np.abs(g.location - locations),
                                        0.95)
        assert force_p95 <= grid_force_p95 + 0.5
        assert location_p95 <= grid_location_p95 + 1.0e-3

    def test_predictions_stay_in_calibrated_spans(self, model_900,
                                                  surrogate):
        rng = np.random.default_rng(5)
        phi1 = rng.uniform(-np.pi, np.pi, 128)
        phi2 = rng.uniform(-np.pi, np.pi, 128)
        force, location = surrogate.predict_batch(phi1, phi2)
        low, high = model_900.force_range
        assert np.all((force >= low) & (force <= high))
        assert np.all((location >= model_900.locations[0])
                      & (location <= model_900.locations[-1]))


class TestBackendRegistry:
    def test_grid_is_the_default_and_unchanged(self, model_900):
        estimator = build_estimator(model_900)
        assert type(estimator) is ForceLocationEstimator
        assert estimator.backend == "grid"

    def test_surrogate_backend_builds_the_amortized_estimator(
            self, model_900):
        estimator = build_estimator(model_900, backend="surrogate",
                                    spec=SMALL_SPEC)
        assert isinstance(estimator, SurrogateEstimator)
        assert estimator.backend == "surrogate"

    def test_unknown_backend_is_an_estimation_error(self, model_900):
        with pytest.raises(EstimationError, match="oracle9000"):
            build_estimator(model_900, backend="oracle9000")

    def test_registry_names_are_the_wire_vocabulary(self):
        assert ESTIMATOR_BACKENDS == ("grid", "surrogate")


class TestServeSeam:
    def test_sensor_config_round_trips_backend(self):
        from repro.serve.protocol import SensorConfig

        config = SensorConfig(backend="surrogate")
        assert SensorConfig.from_dict(config.to_dict()) == config

    def test_sensor_config_defaults_to_grid(self):
        """Pre-backend wire payloads keep deserializing."""
        from repro.serve.protocol import SensorConfig

        assert SensorConfig.from_dict({}).backend == "grid"

    def test_sensor_config_rejects_unknown_backend(self):
        from repro.serve.protocol import SensorConfig

        with pytest.raises(ProtocolError, match="backend"):
            SensorConfig.from_dict({"backend": "oracle9000"})

    def test_load_profile_rejects_unknown_backend(self):
        from repro.serve.loadgen import LoadProfile

        with pytest.raises(ServeError, match="backend"):
            LoadProfile(backend="oracle9000")

    def test_tenant_rejects_unknown_backend(self):
        from repro.gateway import Tenant

        with pytest.raises(ConfigurationError, match="oracle9000"):
            Tenant(name="t", token="k", backend="oracle9000")

    def test_tenant_backend_override_rewrites_requests(self):
        from dataclasses import replace

        from repro.gateway import Gateway, Tenant, TenantTable
        from repro.serve.protocol import EstimateRequest, SensorConfig
        from repro.serve.service import InferenceService

        tenant = Tenant(name="t", token="k", backend="surrogate")
        gateway = Gateway(InferenceService(),
                          tenants=TenantTable([tenant]))
        request = EstimateRequest(sensor_id="s", sequence=1, time=0.0,
                                  phi1=0.1, phi2=0.2,
                                  config=SensorConfig())
        rewritten = gateway._apply_tenant_backend(request, tenant)
        assert rewritten.config.backend == "surrogate"
        # No override configured -> the request passes through as-is.
        passive = replace(tenant, backend="")
        assert gateway._apply_tenant_backend(request, passive) is request
