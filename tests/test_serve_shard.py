"""Consistent-hash sharding of the serve layer.

The contract under test is exact: the hash ring is a pure function of
``(sensor_id, shards, vnodes, salt)`` — same routing in every process
on every machine — and a sharded fleet returns **bit-identical**
responses to a single service for the same request tape, because
routing only decides where a sensor's session lives.  Also covered:
per-shard session placement, fleet-wide telemetry aggregation with no
counts lost, and the threaded per-shard harness from
:mod:`repro.serve.fleet`.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError
from repro.serve import (
    FleetHarness,
    HashRing,
    InferenceService,
    LoadProfile,
    ShardedInferenceService,
    generate_requests,
)


@pytest.fixture(scope="module")
def tape():
    """A small multi-sensor request tape (shared, read-only)."""
    profile = LoadProfile(sensors=12, requests_per_sensor=4)
    service = InferenceService()
    estimator = service.sessions.estimator(profile.config)
    return generate_requests(estimator.model, profile)


class TestHashRing:
    def test_routing_is_deterministic_and_stable(self):
        ring = HashRing(4, vnodes=32)
        again = HashRing(4, vnodes=32)
        sensor_ids = [f"sensor-{index:03d}" for index in range(200)]
        first = [ring.shard_for(sensor_id) for sensor_id in sensor_ids]
        assert first == [again.shard_for(sensor_id)
                         for sensor_id in sensor_ids]
        assert all(0 <= shard < 4 for shard in first)
        assert set(first) == {0, 1, 2, 3}

    def test_distribution_counts_every_sensor_once(self):
        ring = HashRing(3, vnodes=64)
        sensor_ids = [f"sensor-{index:04d}" for index in range(500)]
        counts = ring.distribution(sensor_ids)
        assert sum(counts) == len(sensor_ids)
        assert ring.balance(sensor_ids) > 0.0

    def test_single_shard_ring_routes_everything_to_zero(self):
        ring = HashRing(1)
        assert all(ring.shard_for(f"s{index}") == 0
                   for index in range(32))
        assert ring.balance(["a", "b"]) == 1.0

    def test_salt_changes_the_layout(self):
        sensor_ids = [f"sensor-{index:03d}" for index in range(100)]
        default = HashRing(4).distribution(sensor_ids)
        salted = HashRing(4, salt="other").distribution(sensor_ids)
        assert default != salted

    def test_validation(self):
        with pytest.raises(ServeError):
            HashRing(0)
        with pytest.raises(ServeError):
            HashRing(2, vnodes=0)


class TestShardedService:
    def test_sharded_matches_single_service_bit_for_bit(self, tape):
        sharded = ShardedInferenceService(shards=3)
        single = InferenceService()
        sharded_responses = asyncio.run(sharded.estimate_many(tape))
        single_responses = asyncio.run(single.estimate_many(tape))
        for ours, reference in zip(sharded_responses, single_responses):
            assert ours.sensor_id == reference.sensor_id
            assert ours.sequence == reference.sequence
            assert ours.estimate.force == reference.estimate.force
            assert ours.estimate.location == reference.estimate.location
            assert ours.estimate.touched == reference.estimate.touched

    def test_sessions_live_only_on_their_ring_shard(self, tape):
        sharded = ShardedInferenceService(shards=3)
        asyncio.run(sharded.estimate_many(tape))
        sensor_ids = {request.sensor_id for request in tape}
        for sensor_id in sensor_ids:
            owner = sharded.shard_for(sensor_id)
            for index, service in enumerate(sharded.services):
                session = service.sessions.get(sensor_id)
                if index == owner:
                    assert session is not None
                else:
                    assert session is None

    def test_telemetry_aggregates_with_no_counts_lost(self, tape):
        sharded = ShardedInferenceService(shards=3)
        asyncio.run(sharded.estimate_many(tape))
        snapshot = sharded.telemetry_snapshot()
        assert snapshot["counters"]["serve.responses"] == len(tape)
        per_shard = snapshot["shards"]
        assert len(per_shard) == 3
        assert sum(entry["responses"] for entry in per_shard) == len(tape)
        sensors = {request.sensor_id for request in tape}
        assert snapshot["sessions"]["count"] == len(sensors)
        latency = snapshot["histograms"]["serve.latency_seconds"]
        assert latency["count"] == len(tape)

    def test_touch_events_route_to_the_owning_shard(self, tape):
        sharded = ShardedInferenceService(shards=3)
        asyncio.run(sharded.estimate_many(tape))
        sensor_id = tape[0].sensor_id
        events = sharded.touch_events(sensor_id)
        assert isinstance(events, list)
        with pytest.raises(ServeError):
            sharded.touch_events("sensor-that-never-connected")

    def test_estimate_dict_round_trip(self, tape):
        sharded = ShardedInferenceService(shards=2)
        payload = tape[0].to_dict()
        response = asyncio.run(sharded.estimate_dict(payload))
        assert response["sensor_id"] == tape[0].sensor_id


class TestFleetHarness:
    def test_threaded_fleet_matches_single_shard(self, tape):
        fleet = ShardedInferenceService(shards=3)
        with FleetHarness(fleet) as harness:
            responses, wall, shard_of = harness.run(list(tape))
        reference = ShardedInferenceService(shards=1)
        with FleetHarness(reference) as harness:
            single, _, _ = harness.run(list(tape))
        assert wall > 0.0
        assert len(responses) == len(tape)
        for ours, theirs in zip(responses, single):
            assert ours.estimate.force == theirs.estimate.force
            assert ours.estimate.location == theirs.estimate.location
            assert ours.estimate.touched == theirs.estimate.touched
        ring = fleet.ring
        assert shard_of == [ring.shard_for(request.sensor_id)
                            for request in tape]

    def test_harness_stop_is_idempotent(self, tape):
        fleet = ShardedInferenceService(shards=2)
        harness = FleetHarness(fleet)
        with harness:
            harness.run(list(tape[:8]))
        harness.stop()
        assert all(not worker.thread.is_alive()
                   for worker in harness.workers)
