"""Fault-layer observability: instruments render; unarmed adds none.

Two contracts: (1) every ``fault.*`` instrument the degradation
machinery emits renders through the Prometheus exporter exactly as the
committed golden file says (the exposition format is an operational
contract — dashboards scrape these names); (2) an *unarmed* fault
layer is invisible — serving requests without an armed plan creates no
``fault.*`` instruments at all.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

from repro.errors import QueueFullError
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    retry_sync,
)
from repro.obs import to_prometheus
from repro.obs.registry import observed
from repro.serve import BatchPolicy, EstimateRequest, InferenceService
from repro.serve.protocol import SensorConfig
from repro.serve.session import SensorSession

GOLDEN = Path(__file__).parent / "data" / "obs_faults_prometheus.golden.txt"


def _fault_registry():
    """Exercise every fault.* emitter once, deterministically."""
    with observed() as registry:
        # Injection counters (global + per-site).
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="serve.scheduler", kind="stall",
                      schedule=(0,)),)))
        injector.draw("serve.scheduler")

        # Retry counter: one transient failure, then success.
        state = {"calls": 0}

        def flaky():
            state["calls"] += 1
            if state["calls"] < 2:
                raise QueueFullError("full")
            return None

        retry_sync(flaky, RetryPolicy(attempts=2),
                   retry_on=(QueueFullError,), name="serve.submit",
                   sleep=lambda _: None)

        # Breaker lifecycle: open -> short-circuit -> probe -> close.
        clock = {"t": 0.0}
        breaker = CircuitBreaker(failure_threshold=1,
                                 recovery_timeout_s=1.0,
                                 name="serve.batch",
                                 clock=lambda: clock["t"])
        breaker.record_failure()
        breaker.allow()
        clock["t"] = 2.0
        breaker.allow()
        breaker.record_success()

        # Session quarantine.
        session = SensorSession("g-0", SensorConfig(), estimator=None)
        session.quarantine()
    return registry


class TestFaultInstrumentGolden:
    def test_matches_golden_file(self):
        assert to_prometheus(_fault_registry()) == GOLDEN.read_text()

    def test_every_emitter_is_covered(self):
        counters = _fault_registry().snapshot()["counters"]
        assert set(counters) == {
            "fault.injected",
            "fault.injected.serve.scheduler",
            "fault.retries.serve.submit",
            "fault.breaker.serve.batch.opened",
            "fault.breaker.serve.batch.short_circuits",
            "fault.breaker.serve.batch.probes",
            "fault.breaker.serve.batch.closed",
            "fault.quarantines",
        }


class TestUnarmedIsInvisible:
    def test_unarmed_serve_request_creates_no_fault_instruments(
            self, model_900):
        service = InferenceService(
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            model_factory=lambda config: model_900)
        request = EstimateRequest(sensor_id="u-0", sequence=0,
                                  time=0.0, phi1=0.5, phi2=0.4,
                                  config=SensorConfig())
        with observed() as registry:
            asyncio.run(service.estimate(request))
        snapshot = registry.snapshot()
        names = (list(snapshot["counters"])
                 + list(snapshot["gauges"])
                 + list(snapshot["histograms"]))
        assert not [name for name in names if name.startswith("fault.")]

    def test_unarmed_injection_renders_nothing(self):
        with observed() as registry:
            pass
        assert to_prometheus(registry) == ""
