"""Gateway end-to-end over real sockets: parity, auth, quotas.

The load-bearing guarantee is *network parity*: whatever the framing
layer, the micro-batch scheduler, and the per-tenant fan-in do, every
estimate served over a socket must be bit-identical to the direct
in-process :class:`InferenceService` answer for the same requests —
and the touch events pushed over a streaming subscription must be
bit-identical to a post-hoc ``touch_events`` query.

Every test here binds an ephemeral loopback port and drives it with
the honest clients from :mod:`repro.gateway.client`; hostile bytes
live in ``tests/test_gateway_fuzz.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ProtocolError
from repro.faults.retry import RetryPolicy
from repro.gateway import (
    Gateway,
    GatewayLimits,
    HandshakeRejected,
    Tenant,
    TenantTable,
    WebSocketClient,
    estimate_over_ws,
    http_request,
)
from repro.serve import (
    BatchPolicy,
    EstimateRequest,
    InferenceService,
    LoadProfile,
    SensorConfig,
    generate_requests,
)

#: Concurrent tenants for the e2e stream test (acceptance bar: >= 8).
N_TENANTS = 8


def _service(model, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch=8,
                                            max_delay_s=0.001))
    return InferenceService(model_factory=lambda config: model,
                            **kwargs)


def _tenants(count, **kwargs):
    return [Tenant(name=f"tenant-{index}", token=f"token-{index}",
                   rate_per_s=kwargs.pop("rate_per_s", 1e6),
                   burst=kwargs.pop("burst", 1 << 16), **kwargs)
            for index in range(count)]


def _request(sensor_id, sequence, phi1=0.5, phi2=0.4, time=None):
    return EstimateRequest(
        sensor_id=sensor_id, sequence=sequence,
        time=0.01 * sequence if time is None else time,
        phi1=phi1, phi2=phi2, config=SensorConfig())


class TestStreamingParity:
    """The acceptance e2e: N concurrent tenants, bit-exact parity."""

    def test_concurrent_tenants_match_inprocess_service(self,
                                                        model_900):
        profile = LoadProfile(sensors=N_TENANTS,
                              requests_per_sensor=12,
                              max_batch=8, max_delay_s=0.001)
        requests = generate_requests(model_900, profile)
        by_sensor = {}
        for request in requests:
            by_sensor.setdefault(request.sensor_id, []).append(request)
        tenants = _tenants(N_TENANTS)
        tokens = dict(zip(sorted(by_sensor), (t.token
                                              for t in tenants)))

        async def drive_tenant(host, port, sensor_id):
            """One tenant: subscribe, then stream sequentially."""
            client = await WebSocketClient.connect(
                host, port, token=tokens[sensor_id])
            await client.send_json({"type": "subscribe",
                                    "sensor_id": sensor_id})
            assert (await client.recv_json())["type"] == "subscribed"
            replies, pushed = [], []
            for request in by_sensor[sensor_id]:
                reply, events = await estimate_over_ws(
                    client, request.to_dict())
                replies.append(reply)
                pushed.extend(events)
            # Unsubscribe drains any push emitted after the last
            # reply was already read.
            await client.send_json({"type": "unsubscribe",
                                    "sensor_id": sensor_id})
            while True:
                message = await client.recv_json()
                if message["type"] == "touch_event":
                    pushed.append(message)
                    continue
                assert message["type"] == "unsubscribed"
                break
            await client.close()
            return replies, pushed

        async def networked():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(tenants))
            async with gateway:
                host, port = gateway.address
                return await asyncio.gather(*(
                    drive_tenant(host, port, sensor_id)
                    for sensor_id in sorted(by_sensor)))

        async def inprocess():
            direct = _service(model_900)

            async def one_sensor(sensor_id):
                responses = []
                for request in by_sensor[sensor_id]:
                    responses.append(await direct.estimate(request))
                return responses

            responses = await asyncio.gather(*(
                one_sensor(sensor_id)
                for sensor_id in sorted(by_sensor)))
            return direct, responses

        outcome = asyncio.run(networked())
        direct, expected = asyncio.run(inprocess())

        for sensor_id, (replies, pushed), direct_responses in zip(
                sorted(by_sensor), outcome, expected):
            assert len(replies) == len(direct_responses)
            for reply, response in zip(replies, direct_responses):
                assert reply["type"] == "estimate"
                wire = reply["response"]
                assert wire == response.to_dict() | {
                    "batch_size": wire["batch_size"],
                    "latency_s": wire["latency_s"],
                }
                assert wire["estimate"] == response.to_dict()[
                    "estimate"]
            # Pushed touch events == the post-hoc query, bit-exact.
            # The direct session history may end mid-press; the push
            # contract only emits closed events.
            session = direct.sessions.get(sensor_id)
            events = session.touch_events()
            if session.samples and session.samples[-1].touched:
                events = events[:-1]
            assert [push["event"] for push in pushed] \
                == [event.to_dict() for event in events]
            assert [push["index"] for push in pushed] \
                == list(range(len(events)))

    def test_http_estimate_matches_inprocess(self, model_900):
        request = _request("sensor-http", 0)

        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                return await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=request.to_dict(), token="token-0")

        response = asyncio.run(scenario())
        direct = asyncio.run(_service(model_900).estimate(request))
        assert response.status == 200
        wire = response.json()
        assert wire["estimate"] == direct.to_dict()["estimate"]
        assert wire["quality"] == direct.quality == "ok"

    def test_touch_events_endpoint_matches_pushes(self, model_900):
        pattern = [(0.5, 0.4), (0.6, 0.5), (0.0, 0.0),
                   (0.4, 0.3), (0.0, 0.0)]

        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(
                    host, port, token="token-0")
                for sequence, (phi1, phi2) in enumerate(pattern):
                    await estimate_over_ws(client, _request(
                        "s", sequence, phi1, phi2).to_dict())
                # Subscribing late catches up on closed events.
                await client.send_json({"type": "subscribe",
                                        "sensor_id": "s"})
                assert (await client.recv_json())["type"] \
                    == "subscribed"
                catchup = []
                while True:
                    message = await client.recv_json(timeout=5.0)
                    if message["type"] == "touch_event":
                        catchup.append(message)
                        if len(catchup) == 2:
                            break
                await client.close()
                queried = await http_request(
                    host, port, "GET",
                    "/v1/touch_events?sensor_id=s", token="token-0")
                return catchup, queried

        catchup, queried = asyncio.run(scenario())
        events = queried.json()["events"]
        assert len(events) == 2  # both presses closed by (0, 0)
        assert [push["event"] for push in catchup] == events

    def test_touch_events_unknown_sensor_404(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                return await http_request(
                    host, port, "GET",
                    "/v1/touch_events?sensor_id=ghost",
                    token="token-0")

        assert asyncio.run(scenario()).status == 404


class TestAuthAndQuotas:
    def test_missing_and_unknown_tokens_401(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                payload = _request("s", 0).to_dict()
                missing = await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=payload)
                unknown = await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=payload, token="wrong")
                with pytest.raises(HandshakeRejected) as excinfo:
                    await WebSocketClient.connect(host, port,
                                                  token="wrong")
                return missing, unknown, excinfo.value

        missing, unknown, rejected = asyncio.run(scenario())
        assert missing.status == 401
        assert unknown.status == 401
        assert rejected.response.status == 401
        # The token itself must never be echoed back.
        assert b"wrong" not in unknown.body

    def test_anonymous_table_serves_without_credentials(self,
                                                        model_900):
        async def scenario():
            gateway = Gateway(_service(model_900))  # anonymous default
            async with gateway:
                host, port = gateway.address
                return await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=_request("s", 0).to_dict())

        assert asyncio.run(scenario()).status == 200

    def test_request_quota_sheds_with_rejected_quality(self,
                                                       model_900):
        tenant = Tenant(name="small", token="small-token",
                        rate_per_s=0.001, burst=1)

        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable([tenant]))
            async with gateway:
                host, port = gateway.address
                payload = _request("s", 0).to_dict()
                first = await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=payload, token="small-token")
                second = await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=payload, token="small-token")
                telemetry = gateway.telemetry.snapshot()
                return first, second, telemetry

        first, second, telemetry = asyncio.run(scenario())
        assert first.status == 200
        assert second.status == 429
        assert second.json()["quality"] == "rejected"
        assert telemetry["counters"]["gateway.rate_limited"] == 1

    def test_ws_quota_sheds_with_rejected_quality(self, model_900):
        tenant = Tenant(name="small", token="small-token",
                        rate_per_s=0.001, burst=1)

        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable([tenant]))
            async with gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(
                    host, port, token="small-token")
                ok, _ = await estimate_over_ws(
                    client, _request("s", 0).to_dict())
                shed, _ = await estimate_over_ws(
                    client, _request("s", 1).to_dict())
                await client.close()
                return ok, shed

        ok, shed = asyncio.run(scenario())
        assert ok["type"] == "estimate"
        assert shed["type"] == "error"
        assert shed["code"] == "quota"
        assert shed["quality"] == "rejected"
        assert shed["sequence"] == 1  # request identity echoed back

    def test_connection_quota_rejects_second_socket(self, model_900):
        tenant = Tenant(name="single", token="single-token",
                        max_connections=1)

        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable([tenant]))
            async with gateway:
                host, port = gateway.address
                first = await WebSocketClient.connect(
                    host, port, token="single-token")
                with pytest.raises(HandshakeRejected) as excinfo:
                    await WebSocketClient.connect(
                        host, port, token="single-token")
                status = excinfo.value.response.status
                await first.close()
                # The slot is released on close; a new connection
                # succeeds.
                again = await WebSocketClient.connect(
                    host, port, token="single-token")
                await again.close()
                return status

        assert asyncio.run(scenario()) == 429

    def test_global_connection_cap_answers_503(self, model_900):
        async def scenario():
            gateway = Gateway(
                _service(model_900),
                tenants=TenantTable(_tenants(2)),
                limits=GatewayLimits(max_connections=1))
            async with gateway:
                host, port = gateway.address
                held = await WebSocketClient.connect(
                    host, port, token="token-0")
                overflow = await http_request(
                    host, port, "GET", "/healthz")
                await held.close()
                return overflow

        assert asyncio.run(scenario()).status == 503

    def test_backpressure_sheds_gracefully_and_recovers(self,
                                                        model_900):
        """Scheduler overload surfaces as rejected, never a crash."""
        service = _service(
            model_900,
            policy=BatchPolicy(max_batch=64, max_delay_s=0.05,
                               max_queue=1),
            retry_policy=RetryPolicy(attempts=1))
        flood = 12

        async def scenario():
            gateway = Gateway(service,
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(
                    host, port, token="token-0")
                for sequence in range(flood):
                    await client.send_json({
                        "type": "estimate",
                        "request": _request("s", sequence).to_dict()})
                outcomes = [await client.recv_json(timeout=10.0)
                            for _ in range(flood)]
                await client.close()
                # The connection (and service) survive: a fresh
                # request afterwards is served.
                followup = await estimate_over_ws(
                    await WebSocketClient.connect(
                        host, port, token="token-0"),
                    _request("s", flood).to_dict())
                return outcomes, followup[0]

        outcomes, followup = asyncio.run(scenario())
        served = [o for o in outcomes if o["type"] == "estimate"]
        shed = [o for o in outcomes if o["type"] == "error"]
        assert len(served) + len(shed) == flood
        assert served, "the queued request should still be served"
        assert shed, "max_queue=1 under a 12-deep flood must shed"
        for outcome in shed:
            assert outcome["code"] == "backpressure"
            assert outcome["quality"] == "rejected"
        assert followup["type"] == "estimate"


class TestHttpSurface:
    def test_healthz_and_metrics_are_unauthenticated(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=_request("s", 0).to_dict(),
                    token="token-0")
                health = await http_request(host, port, "GET",
                                            "/healthz")
                metrics = await http_request(host, port, "GET",
                                             "/metrics")
                return health, metrics

        health, metrics = asyncio.run(scenario())
        assert health.status == 200
        assert health.json()["status"] == "ok"
        assert metrics.status == 200
        text = metrics.body.decode("utf-8")
        assert "gateway_responses" in text.replace(".", "_")

    def test_unknown_route_404_and_wrong_method_405(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                lost = await http_request(host, port, "GET",
                                          "/v2/nothing",
                                          token="token-0")
                wrong = await http_request(host, port, "GET",
                                           "/v1/estimate",
                                           token="token-0")
                return lost, wrong

        lost, wrong = asyncio.run(scenario())
        assert lost.status == 404
        assert wrong.status == 405

    def test_malformed_estimate_body_400(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                return await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload={"sensor_id": "s"}, token="token-0")

        response = asyncio.run(scenario())
        assert response.status == 400
        assert "error" in response.json()

    def test_stream_without_upgrade_headers_426(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                return await http_request(host, port, "GET",
                                          "/v1/stream",
                                          token="token-0")

        assert asyncio.run(scenario()).status == 426

    def test_keep_alive_serves_multiple_requests(self, model_900):
        """Two requests on one connection (no ``connection: close``)."""

        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                reader, writer = await asyncio.open_connection(
                    host, port)
                from repro.gateway import http as gw_http

                statuses = []
                for _ in range(2):
                    writer.write(gw_http.render_request(
                        "GET", "/healthz"))
                    await writer.drain()
                    response = await gw_http.read_response(
                        reader, GatewayLimits())
                    statuses.append(response.status)
                writer.close()
                await writer.wait_closed()
                return statuses

        assert asyncio.run(scenario()) == [200, 200]


class TestWsProtocolSurface:
    def test_bad_json_message_is_answered_not_fatal(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(
                    host, port, token="token-0")
                from repro.gateway import websocket

                await client.send_frame(websocket.OP_TEXT,
                                        b"{not json")
                error = await client.recv_json()
                # The connection survives the malformed message.
                reply, _ = await estimate_over_ws(
                    client, _request("s", 0).to_dict())
                await client.close()
                return error, reply

        error, reply = asyncio.run(scenario())
        assert error["type"] == "error"
        assert error["code"] == "protocol"
        assert reply["type"] == "estimate"

    def test_ws_ping_message_and_frame_are_answered(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(
                    host, port, token="token-0")
                await client.send_json({"type": "ping"})
                pong_message = await client.recv_json()
                from repro.gateway import websocket

                # A protocol-level ping is answered transparently by
                # the server; recv_json answers ours, so exercise the
                # server side with a raw ping and read the pong frame.
                await client.send_frame(websocket.OP_PING, b"abc")
                frame = await client._recv_frame()
                await client.close()
                return pong_message, frame

        pong_message, frame = asyncio.run(scenario())
        assert pong_message["type"] == "pong"
        from repro.gateway import websocket

        assert frame.opcode == websocket.OP_PONG
        assert frame.payload == b"abc"

    def test_malformed_estimate_payload_keeps_connection(self,
                                                         model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(
                    host, port, token="token-0")
                error, _ = await estimate_over_ws(
                    client, {"sensor_id": "s"})
                reply, _ = await estimate_over_ws(
                    client, _request("s", 0).to_dict())
                await client.close()
                return error, reply

        error, reply = asyncio.run(scenario())
        assert error["type"] == "error"
        assert error["code"] == "protocol"
        assert reply["type"] == "estimate"

    def test_clean_close_handshake(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(
                    host, port, token="token-0")
                await client.close()
                snapshot = gateway.telemetry.snapshot()
                return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot["counters"]["gateway.ws_sessions"] == 1
        assert "gateway.internal_errors" \
            not in snapshot["counters"]


class TestClientContracts:
    def test_client_rejects_bad_accept_key(self):
        async def handshake(reader, writer):
            await reader.readuntil(b"\r\n\r\n")
            writer.write(
                b"HTTP/1.1 101 Switching Protocols\r\n"
                b"upgrade: websocket\r\n"
                b"connection: Upgrade\r\n"
                b"sec-websocket-accept: bogus\r\n\r\n")
            await writer.drain()

        async def scenario():
            server = await asyncio.start_server(handshake,
                                                "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                with pytest.raises(ProtocolError):
                    await WebSocketClient.connect(host, port)
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_http_request_speaks_wire_json(self, model_900):
        """The one-shot client round-trips through raw sockets."""

        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                response = await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=_request("s", 3).to_dict(),
                    token="token-0")
                return response

        response = asyncio.run(scenario())
        payload = json.loads(response.body.decode("utf-8"))
        assert payload["sequence"] == 3
        assert payload["sensor_id"] == "s"


class TestTraceSurface:
    """Trace propagation at the network edge (W3C traceparent).

    Every HTTP response carries ``x-repro-trace-id``; every WS reply
    (estimate or error envelope) carries ``trace_id``; a caller-sent
    traceparent — HTTP header or WS message key — continues the
    caller's trace so the echoed ID matches the one they minted.
    """

    def test_every_http_response_carries_trace_id(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                ok = await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=_request("s", 0).to_dict(),
                    token="token-0")
                health = await http_request(host, port, "GET",
                                            "/healthz")
                lost = await http_request(host, port, "GET",
                                          "/v2/nothing",
                                          token="token-0")
                bad = await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload={"sensor_id": "s"}, token="token-0")
                denied = await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=_request("s", 1).to_dict())
                return ok, health, lost, bad, denied

        responses = asyncio.run(scenario())
        assert [r.status for r in responses] \
            == [200, 200, 404, 400, 401]
        trace_ids = [r.headers["x-repro-trace-id"] for r in responses]
        for trace_id in trace_ids:
            assert len(trace_id) == 32
            int(trace_id, 16)
        assert len(set(trace_ids)) == len(trace_ids)

    def test_http_traceparent_continues_the_trace(self, model_900):
        sent_trace = "ab" * 16
        traceparent = f"00-{sent_trace}-{'cd' * 8}-01"

        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                reader, writer = await asyncio.open_connection(
                    host, port)
                from repro.gateway import http as gw_http

                body = json.dumps(
                    _request("s", 0).to_dict()).encode("utf-8")
                writer.write(gw_http.render_request(
                    "POST", "/v1/estimate",
                    headers={"authorization": "Bearer token-0",
                             "content-type": "application/json",
                             "traceparent": traceparent},
                    body=body))
                await writer.drain()
                response = await gw_http.read_response(
                    reader, GatewayLimits())
                writer.close()
                await writer.wait_closed()
                return response

        response = asyncio.run(scenario())
        assert response.status == 200
        assert response.headers["x-repro-trace-id"] == sent_trace

    def test_ws_replies_carry_trace_id(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(
                    host, port, token="token-0")
                reply, _ = await estimate_over_ws(
                    client, _request("s", 0).to_dict())
                await client.send_json({"type": "estimate",
                                        "request": {"sensor_id": "s"}})
                error = await client.recv_json()
                await client.close()
                return reply, error

        reply, error = asyncio.run(scenario())
        assert reply["type"] == "estimate"
        assert len(reply["trace_id"]) == 32
        assert error["type"] == "error"
        assert error["code"] == "protocol"
        assert len(error["trace_id"]) == 32
        assert error["trace_id"] != reply["trace_id"]

    def test_ws_traceparent_continues_the_trace(self, model_900):
        sent_trace = "12" * 16
        traceparent = f"00-{sent_trace}-{'34' * 8}-01"

        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                client = await WebSocketClient.connect(
                    host, port, token="token-0")
                await client.send_json({
                    "type": "estimate",
                    "traceparent": traceparent,
                    "request": _request("s", 0).to_dict()})
                reply = await client.recv_json()
                await client.close()
                return reply

        reply = asyncio.run(scenario())
        assert reply["type"] == "estimate"
        assert reply["trace_id"] == sent_trace

    def test_healthz_reports_slo_detail(self, model_900):
        async def scenario():
            gateway = Gateway(_service(model_900),
                              tenants=TenantTable(_tenants(1)))
            async with gateway:
                host, port = gateway.address
                await http_request(
                    host, port, "POST", "/v1/estimate",
                    payload=_request("s", 0).to_dict(),
                    token="token-0")
                return await http_request(host, port, "GET",
                                          "/healthz")

        health = asyncio.run(scenario()).json()
        assert health["status"] in ("ok", "degraded")
        names = {status["name"] for status in health["slo"]}
        assert names == {"gateway-availability", "serve-latency"}
        for status in health["slo"]:
            assert "alerting" in status and "burn" in status
