"""Fault layer units: plans, the injector registry, retries, breaker."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, FaultError, QueueFullError
from repro.faults import (
    SITES,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    armed,
    disarm,
    inject,
    retry_sync,
    unit_draw,
    validate_plan,
)


class TestUnitDraw:
    def test_in_unit_interval(self):
        for counter in range(200):
            value = unit_draw(7, "site", "kind", counter)
            assert 0.0 <= value < 1.0

    def test_pure_function_of_arguments(self):
        assert (unit_draw(3, "a", 1) == unit_draw(3, "a", 1))
        assert (unit_draw(3, "a", 1) != unit_draw(4, "a", 1))
        assert (unit_draw(3, "a", 1) != unit_draw(3, "b", 1))

    def test_roughly_uniform(self):
        draws = [unit_draw(0, "x", c) for c in range(2000)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55


class TestFaultSpec:
    def test_validates_fields(self):
        with pytest.raises(FaultError):
            FaultSpec(site="", kind="stall")
        with pytest.raises(FaultError):
            FaultSpec(site="s", kind="k", probability=1.5)
        with pytest.raises(FaultError):
            FaultSpec(site="s", kind="k", duration=0)
        with pytest.raises(FaultError):
            FaultSpec(site="s", kind="k", schedule=(-1,))

    def test_schedule_fires_exactly_there(self):
        spec = FaultSpec(site="s", kind="k", schedule=(2, 5))
        fired = [c for c in range(10) if spec.fires(0, c)]
        assert fired == [2, 5]

    def test_burst_duration_extends_schedule(self):
        spec = FaultSpec(site="s", kind="k", schedule=(3,), duration=3)
        fired = [c for c in range(10) if spec.fires(0, c)]
        assert fired == [3, 4, 5]

    def test_probability_is_counter_deterministic(self):
        spec = FaultSpec(site="s", kind="k", probability=0.3)
        first = [spec.fires(11, c) for c in range(100)]
        second = [spec.fires(11, c) for c in range(100)]
        assert first == second
        assert any(first) and not all(first)

    def test_zero_probability_never_fires(self):
        spec = FaultSpec(site="s", kind="k", probability=0.0)
        assert not any(spec.fires(0, c) for c in range(50))

    def test_per_spec_seed_decorrelates(self):
        a = FaultSpec(site="s", kind="k", probability=0.5, seed=0)
        b = FaultSpec(site="s", kind="k", probability=0.5, seed=1)
        assert ([a.fires(0, c) for c in range(64)]
                != [b.fires(0, c) for c in range(64)])

    def test_dict_round_trip(self):
        spec = FaultSpec(site="serve.scheduler", kind="stall",
                         probability=0.25, schedule=(1, 4),
                         magnitude=0.5, duration=2, seed=9)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_malformed_dict_raises_fault_error(self):
        with pytest.raises(FaultError):
            FaultSpec.from_dict("not a dict")
        with pytest.raises(FaultError):
            FaultSpec.from_dict({"site": "s"})  # no kind
        with pytest.raises(FaultError):
            FaultSpec.from_dict({"site": "s", "kind": "k",
                                 "probability": "lots"})


class TestFaultPlan:
    def _plan(self):
        return FaultPlan(
            name="test",
            seed=5,
            specs=(
                FaultSpec(site="serve.scheduler", kind="stall",
                          probability=0.1),
                FaultSpec(site="cache.store", kind="corrupt",
                          schedule=(0,)),
            ),
        )

    def test_sites_and_specs_for(self):
        plan = self._plan()
        assert plan.sites == ("cache.store", "serve.scheduler")
        assert len(plan.specs_for("serve.scheduler")) == 1
        assert plan.specs_for("reader.capture") == ()

    def test_json_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert json.loads(plan.to_json())["seed"] == 5

    def test_save_load_round_trip(self, tmp_path):
        plan = self._plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_malformed_json_raises_fault_error(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json("{not json")
        with pytest.raises(FaultError):
            FaultPlan.from_dict([1, 2, 3])

    def test_specs_must_be_fault_specs(self):
        with pytest.raises(FaultError):
            FaultPlan(specs=({"site": "s"},))


class TestInjector:
    def test_registry_names_all_issue_sites(self):
        assert set(SITES) == {
            "reader.capture", "channel.snr", "sensor.clock",
            "cache.store", "serve.scheduler", "experiments.parallel",
        }

    def test_validate_rejects_unknown_site_and_kind(self):
        with pytest.raises(FaultError):
            validate_plan(FaultPlan(specs=(
                FaultSpec(site="nope", kind="stall"),)))
        with pytest.raises(FaultError):
            validate_plan(FaultPlan(specs=(
                FaultSpec(site="serve.scheduler", kind="dropout"),)))

    def test_draw_advances_counter_and_records_events(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="serve.scheduler", kind="stall",
                      schedule=(1,), magnitude=0.5),))
        injector = FaultInjector(plan)
        assert injector.draw("serve.scheduler") is None
        event = injector.draw("serve.scheduler")
        assert event is not None
        assert (event.site, event.kind, event.counter) == (
            "serve.scheduler", "stall", 1)
        assert event.magnitude == 0.5
        assert injector.counter("serve.scheduler") == 2
        assert injector.event_dicts() == [event.to_dict()]

    def test_draw_at_does_not_advance(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="experiments.parallel", kind="crash",
                      schedule=(3,)),))
        injector = FaultInjector(plan)
        assert injector.draw_at("experiments.parallel", 3) is not None
        assert injector.draw_at("experiments.parallel", 3) is not None
        assert injector.counter("experiments.parallel") == 0

    def test_event_rng_is_deterministic(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="cache.store", kind="corrupt",
                      schedule=(0,)),))
        a = FaultInjector(plan).draw("cache.store")
        b = FaultInjector(plan).draw("cache.store")
        assert a.rng().integers(1 << 30) == b.rng().integers(1 << 30)

    def test_unknown_site_draw_is_noop(self):
        injector = FaultInjector(FaultPlan())
        assert injector.draw("serve.scheduler") is None


class TestArming:
    def test_unarmed_by_default(self):
        assert armed() is None

    def test_inject_arms_and_disarms(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="serve.scheduler", kind="stall",
                      probability=0.1),))
        with inject(plan) as injector:
            assert armed() is injector
        assert armed() is None

    def test_nesting_is_rejected(self):
        plan = FaultPlan()
        with inject(plan):
            with pytest.raises(FaultError):
                with inject(plan):
                    pass
        assert armed() is None

    def test_invalid_plan_is_rejected_before_arming(self):
        bad = FaultPlan(specs=(FaultSpec(site="nope", kind="k"),))
        with pytest.raises(FaultError):
            with inject(bad):
                pass
        assert armed() is None

    def test_disarm_escape_hatch(self):
        plan = FaultPlan()
        with inject(plan) as injector:
            assert disarm() is injector
            assert armed() is None


class TestRetry:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)

    def test_delays_are_seeded_and_bounded(self):
        policy = RetryPolicy(attempts=5, base_delay_s=0.01,
                             multiplier=2.0, max_delay_s=0.03,
                             jitter=0.1, seed=3)
        first = list(policy.delays())
        second = list(policy.delays())
        assert first == second
        assert len(first) == 4
        assert all(delay <= 0.03 * 1.1 for delay in first)

    def test_retry_sync_recovers_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise QueueFullError("full")
            return "done"

        slept = []
        result = retry_sync(flaky, RetryPolicy(attempts=3),
                            retry_on=(QueueFullError,),
                            sleep=slept.append)
        assert result == "done"
        assert calls["n"] == 3
        assert len(slept) == 2

    def test_budget_exhaustion_reraises_original_type(self):
        def always_full():
            raise QueueFullError("full")

        with pytest.raises(QueueFullError):
            retry_sync(always_full, RetryPolicy(attempts=3),
                       retry_on=(QueueFullError,),
                       sleep=lambda _: None)

    def test_unlisted_exception_propagates_immediately(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise ValueError("nope")

        with pytest.raises(ValueError):
            retry_sync(boom, RetryPolicy(attempts=5),
                       retry_on=(QueueFullError,),
                       sleep=lambda _: None)
        assert calls["n"] == 1


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=2, timeout=1.0):
        return CircuitBreaker(failure_threshold=threshold,
                              recovery_timeout_s=timeout,
                              clock=lambda: clock["t"])

    def test_opens_at_threshold_and_fast_fails(self):
        clock = {"t": 0.0}
        breaker = self._breaker(clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_probe_then_close(self):
        clock = {"t": 0.0}
        breaker = self._breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock["t"] = 1.5
        assert breaker.state == "half_open"
        assert breaker.allow()       # the one probe
        assert not breaker.allow()   # concurrent callers stay blocked
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = {"t": 0.0}
        breaker = self._breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock["t"] = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        clock = {"t": 0.0}
        breaker = self._breaker(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(recovery_timeout_s=-1.0)
