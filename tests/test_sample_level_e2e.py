"""Sample-level end-to-end test: an unsynchronized listener reader.

The fast frame-level sounder assumes a synchronized single-device
reader (the paper's USRP).  This test runs the whole chain at the
*sample* level for a listener that is NOT synchronized: unknown frame
timing and a carrier frequency offset.  The receiver must detect the
preamble, estimate and correct the CFO, LS-estimate the channel per
frame, and still recover the press's differential phases — closing the
loop between the sample-level modem, the sync module and the harmonic
core.
"""

import numpy as np
import pytest

from repro.channel.propagation import BackscatterLink
from repro.core.calibration import harmonic_differential_phases
from repro.core.harmonics import HarmonicExtractor, integer_period_group_length
from repro.core.phase import differential_phase
from repro.experiments.scenarios import fast_transducer
from repro.reader.ofdm import OFDMModem
from repro.reader.sounder import ChannelEstimateStream
from repro.reader.sync import FrameSynchronizer, apply_cfo, correct_cfo
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.tag import TagState, WiForceTag

#: Shortened padding: 625-sample frames (50 us), so a 1 kHz-integer
#: phase group is only 20 frames and the sample-level test stays fast.
CONFIG = OFDMSounderConfig(carrier_frequency=900e6, zero_padding=305)
GROUP = integer_period_group_length(CONFIG.frame_period, 1e3)
TIMING_OFFSET = 217           # unknown to the receiver
CFO_HZ = 2e3                  # unknown to the receiver


@pytest.fixture(scope="module")
def setup():
    tag = WiForceTag(fast_transducer())
    link = BackscatterLink()
    frequencies = CONFIG.subcarrier_frequencies()
    tag_gain = link.tag_path_gain(frequencies)
    static = link.direct_path_gain(frequencies)
    modem = OFDMModem(CONFIG, noise_figure_db=6.0,
                      rng=np.random.default_rng(5))
    return tag, frequencies, tag_gain, static, modem


def transmit_capture(setup, state: TagState, frames: int,
                     start_time: float) -> np.ndarray:
    """Synthesize the listener's raw samples for one capture."""
    tag, frequencies, tag_gain, static, modem = setup
    frame_samples = CONFIG.frame_samples
    total = TIMING_OFFSET + frames * frame_samples
    samples = np.zeros(total, dtype=complex)
    times = start_time + np.arange(frames) * CONFIG.frame_period
    gamma = tag.reflection_series(frequencies, times, state)
    for n in range(frames):
        channel = static + tag_gain * gamma[n]
        received = modem.received_preamble(channel)
        start = TIMING_OFFSET + n * frame_samples
        samples[start:start + received.size] = received
    return apply_cfo(samples, CFO_HZ, CONFIG.bandwidth)


def receive_capture(setup, samples: np.ndarray, frames: int,
                    start_time: float) -> ChannelEstimateStream:
    """Synchronize, correct CFO and estimate the channel per frame."""
    _, frequencies, _, _, modem = setup
    sync = FrameSynchronizer(CONFIG)
    result = sync.detect(samples)
    corrected = correct_cfo(samples, result.cfo, CONFIG.bandwidth)
    frame_samples = CONFIG.frame_samples
    preamble = CONFIG.preamble_samples
    estimates = np.empty((frames, CONFIG.subcarriers), dtype=complex)
    for n in range(frames):
        start = result.offset + n * frame_samples
        estimates[n] = modem.estimate_channel(
            corrected[start:start + preamble])
    times = start_time + np.arange(frames) * CONFIG.frame_period
    return ChannelEstimateStream(
        estimates=estimates, times=times,
        frequencies=frequencies, frame_period=CONFIG.frame_period)


class TestListenerEndToEnd:
    def test_sync_recovers_offset_and_cfo(self, setup):
        samples = transmit_capture(setup, TagState(), 4, 0.0)
        result = FrameSynchronizer(CONFIG).detect(samples)
        assert abs(result.offset - TIMING_OFFSET) <= 2
        assert result.cfo == pytest.approx(CFO_HZ, rel=0.05)

    def test_differential_phase_survives_listener_chain(self, setup):
        tag = setup[0]
        frames = 2 * GROUP
        state = TagState(4.0, 0.040)

        base_tx = transmit_capture(setup, TagState(), frames, 0.0)
        touch_start = frames * CONFIG.frame_period
        touch_tx = transmit_capture(setup, state, frames, touch_start)

        base_stream = receive_capture(setup, base_tx, frames, 0.0)
        touch_stream = receive_capture(setup, touch_tx, frames,
                                       touch_start)

        tones = (tag.clocking.readout_port1, tag.clocking.readout_port2)
        extractor = HarmonicExtractor(tones=tones, group_length=GROUP)
        base = extractor.extract(base_stream)
        touch = extractor.extract(touch_stream)
        phi1 = differential_phase(base[tones[0]].values.mean(axis=0),
                                  touch[tones[0]].values.mean(axis=0))
        phi2 = differential_phase(base[tones[1]].values.mean(axis=0),
                                  touch[tones[1]].values.mean(axis=0))

        expected = harmonic_differential_phases(tag, 900e6, state.force,
                                                state.location)
        assert phi1 == pytest.approx(expected[0], abs=np.radians(5.0))
        assert phi2 == pytest.approx(expected[1], abs=np.radians(5.0))
