"""Beam-dynamics tests: the phase-group stationarity argument."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mechanics.dynamics import (
    modal_summary,
    natural_frequencies,
    press_transient,
    settling_time,
    stationarity_margin,
)


class TestNaturalFrequencies:
    def test_ascending(self, composite_beam):
        frequencies = natural_frequencies(composite_beam, modes=4)
        assert all(b > a for a, b in zip(frequencies, frequencies[1:]))

    def test_mode_scaling_without_foundation(self, composite_beam):
        """Euler-Bernoulli modes scale as n^2."""
        frequencies = natural_frequencies(composite_beam, modes=3)
        assert frequencies[1] / frequencies[0] == pytest.approx(4.0,
                                                                rel=1e-9)
        assert frequencies[2] / frequencies[0] == pytest.approx(9.0,
                                                                rel=1e-9)

    def test_foundation_raises_frequencies(self, composite_beam):
        bare = natural_frequencies(composite_beam, 1)[0]
        stiffened = natural_frequencies(composite_beam, 1,
                                        foundation_stiffness=3e3)[0]
        assert stiffened > bare

    def test_fundamental_in_tens_of_hz(self, composite_beam):
        """The sensor's mechanics live at tens of Hz — three orders of
        magnitude below the kHz switching, as the paper argues."""
        fundamental = natural_frequencies(composite_beam, 1,
                                          foundation_stiffness=3e3)[0]
        assert 5.0 < fundamental < 200.0

    def test_rejects_zero_modes(self, composite_beam):
        with pytest.raises(ConfigurationError):
            natural_frequencies(composite_beam, 0)


class TestSettlingTime:
    def test_formula(self):
        assert settling_time(10.0, 0.1) == pytest.approx(
            -np.log(0.02) / (0.1 * 2 * np.pi * 10.0))

    def test_more_damping_settles_faster(self):
        assert settling_time(10.0, 0.3) < settling_time(10.0, 0.1)

    def test_rejects_bad_damping(self):
        with pytest.raises(ConfigurationError):
            settling_time(10.0, 1.5)

    def test_rejects_bad_band(self):
        with pytest.raises(ConfigurationError):
            settling_time(10.0, 0.1, band=2.0)


class TestStationarity:
    def test_settling_much_slower_than_groups(self, composite_beam):
        """The section 3.3 assumption: forces settle over ~0.1-1 s
        while a phase group lasts 36 ms."""
        margin = stationarity_margin(composite_beam,
                                     group_duration=0.036,
                                     foundation_stiffness=3e3)
        assert margin > 2.0

    def test_summary_fields(self, composite_beam):
        summary = modal_summary(composite_beam, foundation_stiffness=3e3)
        assert summary.fundamental == summary.natural_frequencies[0]
        assert summary.settling_time > 0.0

    def test_rejects_bad_group_duration(self, composite_beam):
        with pytest.raises(ConfigurationError):
            stationarity_margin(composite_beam, 0.0)


class TestPressTransient:
    def test_starts_at_zero(self, composite_beam):
        response = press_transient(composite_beam, np.array([0.0]))
        assert response[0] == pytest.approx(0.0, abs=1e-12)

    def test_settles_to_one(self, composite_beam):
        response = press_transient(composite_beam, np.array([10.0]),
                                   foundation_stiffness=3e3)
        assert response[0] == pytest.approx(1.0, abs=1e-3)

    def test_overshoots_underdamped(self, composite_beam):
        times = np.linspace(0.0, 0.5, 2000)
        response = press_transient(composite_beam, times,
                                   damping_ratio=0.1,
                                   foundation_stiffness=3e3)
        assert response.max() > 1.01

    def test_rejects_negative_times(self, composite_beam):
        with pytest.raises(ConfigurationError):
            press_transient(composite_beam, np.array([-1.0]))
