"""Shared observability registry: gauges, gating, scoped observation."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Histogram,
    MemorySink,
    Registry,
    active,
    disable,
    enable,
    enable_from_env,
    get_registry,
    is_enabled,
    maybe_span,
    observed,
    set_registry,
)
from repro.obs.registry import _NULL_SPAN


@pytest.fixture(autouse=True)
def _restore_obs_state():
    """Snapshot and restore the process-wide obs state per test."""
    previous_registry = get_registry()
    previous_enabled = is_enabled()
    yield
    set_registry(previous_registry)
    if previous_enabled:
        enable()
    else:
        disable()


class TestGauge:
    def test_set_and_add(self):
        gauge = Registry().gauge("queue_depth")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == 2.5

    def test_registry_reuses_instance(self):
        registry = Registry()
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")


class TestGating:
    def test_off_by_default_state(self):
        disable()
        assert not is_enabled()
        assert active() is None

    def test_enable_returns_default_registry(self):
        registry = enable()
        assert is_enabled()
        assert active() is registry
        assert registry is get_registry()

    def test_enable_installs_given_registry(self):
        mine = Registry()
        assert enable(mine) is mine
        assert get_registry() is mine

    def test_disable_keeps_instruments(self):
        registry = enable()
        registry.counter("kept").increment()
        disable()
        assert active() is None
        assert get_registry().counter("kept").value == 1

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("yes", True), ("on", True),
        ("0", False), ("false", False), ("no", False), ("", False),
        ("  ", False), ("FALSE", False),
    ])
    def test_enable_from_env(self, value, expected):
        disable()
        assert enable_from_env({"REPRO_OBS": value}) is expected
        assert is_enabled() is expected

    def test_enable_from_env_unset(self):
        disable()
        assert enable_from_env({}) is False


class TestMaybeSpan:
    def test_disabled_returns_shared_noop(self):
        disable()
        span = maybe_span("stage", {"k": 1})
        assert span is _NULL_SPAN
        with span as s:
            s.set("ignored", True)  # must be harmless

    def test_enabled_records_span(self):
        registry = Registry()
        enable(registry)
        with maybe_span("stage") as span:
            span.set("k", 2)
        histograms = registry.snapshot()["histograms"]
        assert histograms["span.stage.seconds"]["count"] == 1


class TestObserved:
    def test_scopes_a_fresh_registry(self):
        disable()
        with observed() as registry:
            assert is_enabled()
            assert active() is registry
            registry.counter("inside").increment()
        assert not is_enabled()
        assert "inside" not in get_registry().snapshot()["counters"]

    def test_restores_previous_enabled_state(self):
        outer = enable()
        with observed() as inner:
            assert active() is inner
        assert is_enabled()
        assert active() is outer

    def test_restores_on_exception(self):
        disable()
        with pytest.raises(RuntimeError):
            with observed():
                raise RuntimeError("boom")
        assert not is_enabled()

    def test_accepts_sink(self):
        sink = MemorySink()
        with observed(sink) as registry:
            with registry.span("s"):
                pass
        assert sink.events[0]["span"] == "s"

    def test_accepts_existing_registry(self):
        mine = Registry()
        with observed(registry=mine) as registry:
            assert registry is mine


class TestSpanStatus:
    def test_ok_span_has_explicit_status(self):
        sink = MemorySink()
        registry = Registry(sink)
        with registry.span("stage"):
            pass
        event = sink.events[0]
        assert event["status"] == "ok"
        assert event["error"] is None
        assert "error_message" not in event

    def test_error_span_records_message_not_just_type(self):
        sink = MemorySink()
        registry = Registry(sink)
        with pytest.raises(ValueError):
            with registry.span("stage"):
                raise ValueError("bad frame at index 7")
        event = sink.events[0]
        assert event["status"] == "error"
        assert event["error"] == "ValueError"
        assert event["error_message"] == "bad frame at index 7"


class TestHistogramMerge:
    def test_merge_adds_counts_and_widens_extremes(self):
        left = Histogram("h", (1.0, 2.0))
        right = Histogram("h", (1.0, 2.0))
        left.observe(0.5)
        right.observe(1.5)
        right.observe(9.0)
        left.merge(right)
        assert left.count == 3
        assert left.total == pytest.approx(11.0)
        assert left.minimum == pytest.approx(0.5)
        assert left.maximum == pytest.approx(9.0)

    def test_merge_empty_other_keeps_extremes(self):
        left = Histogram("h", (1.0,))
        left.observe(0.25)
        left.merge(Histogram("h", (1.0,)))
        assert left.count == 1
        assert left.minimum == pytest.approx(0.25)

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", (1.0,)).merge(Histogram("h", (2.0,)))


class TestMergeSnapshot:
    def test_counters_sum_and_histograms_merge(self):
        parent = Registry()
        parent.counter("c").increment(2)
        parent.histogram("h", (1.0,)).observe(0.5)
        child = Registry()
        child.counter("c").increment(3)
        child.counter("only_child").increment()
        child.gauge("g").set(7.0)
        child.histogram("h", (1.0,)).observe(2.0)
        child.histogram("h2", (1.0,)).observe(0.1)
        parent.merge_snapshot(child.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["c"] == 5
        assert snapshot["counters"]["only_child"] == 1
        assert snapshot["gauges"]["g"] == 7.0
        assert snapshot["histograms"]["h"]["count"] == 2
        assert snapshot["histograms"]["h2"]["count"] == 1

    def test_empty_snapshot_is_a_noop(self):
        parent = Registry()
        parent.counter("c").increment()
        parent.merge_snapshot({})
        assert parent.snapshot()["counters"]["c"] == 1
