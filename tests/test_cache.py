"""repro.cache: keys, tiers, robustness, wiring, CLI.

The invariants under test are the ones the campaigns lean on:

* content addressing — equal specs hit, different specs (or bumped
  versions) miss;
* robustness — corrupt/truncated artifacts, unwritable directories and
  the kill switch all degrade to recompute, never to an exception,
  and always bit-identically;
* observability — hits/misses surface on the shared obs registry and
  in the Prometheus export.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.cache import (
    ArtifactCache,
    CACHE_DIR_ENV,
    CACHE_ENV,
    FORMAT_VERSION,
    cached_artifact,
    canonicalize,
    clear,
    config_from_env,
    directory_stats,
    get_cache,
    key_digest,
    prune,
    set_cache,
    temporary_cache,
)
from repro.errors import CacheError
from repro.obs import to_prometheus
from repro.obs.registry import observed
from repro.sensor.geometry import default_sensor_design


@pytest.fixture()
def cache(tmp_path):
    """A fresh two-tier cache rooted in a temp directory."""
    return ArtifactCache(tmp_path / "cache")


# -- key canonicalization ------------------------------------------------


class TestCanonicalize:
    def test_floats_keep_exact_bits(self):
        assert canonicalize(0.1) != canonicalize(
            0.1 + 2.0 ** -54)

    def test_nan_and_inf_are_representable(self):
        assert canonicalize(float("nan")) != canonicalize(float("inf"))

    def test_int_and_float_are_distinct(self):
        assert canonicalize(1) != canonicalize(1.0)

    def test_ndarray_keyed_by_content(self):
        a = np.arange(6, dtype=float)
        b = np.arange(6, dtype=float)
        assert canonicalize(a) == canonicalize(b)
        b[3] = -1.0
        assert canonicalize(a) != canonicalize(b)

    def test_ndarray_dtype_matters(self):
        assert (canonicalize(np.zeros(3, dtype=np.float32))
                != canonicalize(np.zeros(3, dtype=np.float64)))

    def test_dataclasses_recurse(self):
        design = default_sensor_design()
        assert canonicalize(design) == canonicalize(
            default_sensor_design())

    def test_unknown_types_raise_cache_error(self):
        with pytest.raises(CacheError):
            canonicalize(object())

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(CacheError):
            canonicalize({1: "x"})

    def test_digest_depends_on_namespace_version_key(self):
        base = key_digest("ns", 1, {"a": 1})
        assert key_digest("other", 1, {"a": 1}) != base
        assert key_digest("ns", 2, {"a": 1}) != base
        assert key_digest("ns", 1, {"a": 2}) != base


# -- tiers and the decorator ---------------------------------------------


class TestTiers:
    def test_miss_then_memory_then_disk(self, cache):
        calls = []
        value = cache.get_or_compute("ns", 1, {"k": 1},
                                     lambda: calls.append(1) or 42)
        assert value == 42
        assert cache.get_or_compute("ns", 1, {"k": 1},
                                    lambda: calls.append(1) or 42) == 42
        assert len(calls) == 1
        assert cache.stats.memory_hits == 1
        cache.clear_memory()
        assert cache.get_or_compute("ns", 1, {"k": 1},
                                    lambda: calls.append(1) or 42) == 42
        assert len(calls) == 1
        assert cache.stats.disk_hits == 1

    def test_memory_tier_is_bounded_lru(self, tmp_path):
        cache = ArtifactCache(tmp_path, memory_entries=4)
        for k in range(6):
            cache.get_or_compute("ns", 1, {"k": k}, lambda k=k: k)
        assert len(cache._memory) == 4

    def test_decode_runs_on_every_hit(self, cache):
        cache.get_or_compute("ns", 1, {"k": 1}, lambda: [1, 2],
                             encode=list, decode=list)
        first = cache.get_or_compute("ns", 1, {"k": 1}, lambda: [1, 2],
                                     encode=list, decode=list)
        second = cache.get_or_compute("ns", 1, {"k": 1}, lambda: [1, 2],
                                      encode=list, decode=list)
        assert first == second
        assert first is not second  # callers may mutate freely

    def test_decorator_keys_on_qualname_and_args(self, cache):
        set_cache(cache)
        try:
            calls = []

            @cached_artifact()
            def square(x):
                calls.append(x)
                return x * x

            assert square(3.0) == 9.0
            assert square(3.0) == 9.0
            assert square(4.0) == 16.0
            assert calls == [3.0, 4.0]
            assert square.cache_namespace.endswith("square")
        finally:
            set_cache(None)

    def test_version_bump_invalidates(self, cache):
        cache.get_or_compute("ns", 1, {"k": 1}, lambda: "v1")
        assert cache.get_or_compute("ns", 2, {"k": 1},
                                    lambda: "v2") == "v2"
        assert cache.stats.misses == 2

    def test_contains(self, cache):
        assert not cache.contains("ns", 1, {"k": 1})
        cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
        assert cache.contains("ns", 1, {"k": 1})


# -- robustness ----------------------------------------------------------


def _artifact_files(cache):
    return sorted(cache.directory.glob("v*/*/*.pkl"))


class TestRobustness:
    def _seed(self, cache):
        cache.get_or_compute("ns", 1, {"k": 1}, lambda: {"v": 7})
        cache.clear_memory()
        [path] = _artifact_files(cache)
        return path

    def test_truncated_artifact_recomputes(self, cache):
        path = self._seed(cache)
        path.write_bytes(path.read_bytes()[:30])
        value = cache.get_or_compute("ns", 1, {"k": 1},
                                     lambda: {"v": 7})
        assert value == {"v": 7}
        assert cache.stats.errors == 1
        assert cache.stats.misses == 2

    def test_flipped_bit_recomputes(self, cache):
        path = self._seed(cache)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.get_or_compute("ns", 1, {"k": 1},
                                    lambda: {"v": 7}) == {"v": 7}
        assert cache.stats.errors == 1

    def test_garbage_file_recomputes(self, cache):
        path = self._seed(cache)
        path.write_bytes(b"not an artifact at all")
        assert cache.get_or_compute("ns", 1, {"k": 1},
                                    lambda: {"v": 7}) == {"v": 7}
        assert cache.stats.errors == 1

    def test_unpicklable_body_recomputes(self, cache):
        path = self._seed(cache)
        from repro.cache.store import _MAGIC, _body_digest

        body = pickle.dumps({"v": 7})[:-2]  # framed but truncated pickle
        path.write_bytes(_MAGIC + _body_digest(body) + body)
        assert cache.get_or_compute("ns", 1, {"k": 1},
                                    lambda: {"v": 7}) == {"v": 7}
        assert cache.stats.errors == 1

    def test_corrupt_artifact_is_dropped_and_rewritten(self, cache):
        path = self._seed(cache)
        path.write_bytes(b"junk")
        cache.get_or_compute("ns", 1, {"k": 1}, lambda: {"v": 7})
        cache.clear_memory()
        assert cache.get_or_compute("ns", 1, {"k": 1},
                                    lambda: {"v": 0}) == {"v": 7}

    def test_unwritable_directory_degrades(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the cache dir should be")
        cache = ArtifactCache(target)
        assert cache.get_or_compute("ns", 1, {"k": 1}, lambda: 5) == 5
        assert cache.stats.errors == 1
        # The memory tier still serves.
        assert cache.get_or_compute("ns", 1, {"k": 1}, lambda: 6) == 5

    def test_disabled_cache_recomputes_every_call(self, tmp_path):
        cache = ArtifactCache(tmp_path, enabled=False)
        calls = []
        for _ in range(2):
            cache.get_or_compute("ns", 1, {"k": 1},
                                 lambda: calls.append(1) or 1)
        assert len(calls) == 2
        assert cache.stats.requests == 0
        assert not _artifact_files(cache)


# -- env configuration ---------------------------------------------------


class TestEnvironment:
    def test_kill_switch_values(self):
        for raw in ("0", "false", "no", " FALSE "):
            assert not config_from_env({CACHE_ENV: raw}).enabled
        for raw in ("", "1", "true", "on"):
            assert config_from_env({CACHE_ENV: raw}).enabled

    def test_dir_env_wins(self, tmp_path):
        config = config_from_env({CACHE_DIR_ENV: str(tmp_path)})
        assert config.directory == tmp_path

    def test_get_cache_tracks_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "a"))
        first = get_cache()
        assert first.directory == tmp_path / "a"
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "b"))
        assert get_cache().directory == tmp_path / "b"
        monkeypatch.setenv(CACHE_ENV, "0")
        assert not get_cache().enabled

    def test_temporary_cache_scopes_default(self, tmp_path):
        with temporary_cache(tmp_path) as cache:
            assert get_cache() is cache
        assert get_cache() is not cache


# -- maintenance + CLI ---------------------------------------------------


class TestMaintenance:
    def test_directory_stats_counts_namespaces(self, cache):
        cache.get_or_compute("ns.a", 1, {"k": 1}, lambda: 1)
        cache.get_or_compute("ns.b", 1, {"k": 1}, lambda: 2)
        stats = directory_stats(cache.directory)
        assert stats["total_entries"] == 2
        assert set(stats["namespaces"]) == {"ns.a", "ns.b"}
        assert stats["format_version"] == FORMAT_VERSION

    def test_prune_by_age(self, cache):
        cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
        [path] = _artifact_files(cache)
        old = os.stat(path).st_mtime - 10 * 86400
        os.utime(path, (old, old))
        assert prune(cache.directory, max_age_days=30.0)["removed"] == 0
        assert prune(cache.directory, max_age_days=5.0)["removed"] == 1

    def test_prune_to_byte_budget_keeps_newest(self, cache):
        for k in range(4):
            cache.get_or_compute("ns", 1, {"k": k}, lambda k=k: k)
        paths = _artifact_files(cache)
        for age, path in enumerate(paths):
            stamp = os.stat(path).st_mtime - 100 * (len(paths) - age)
            os.utime(path, (stamp, stamp))
        one_entry = os.stat(paths[0]).st_size
        result = prune(cache.directory, max_bytes=one_entry)
        assert result["removed"] == 3

    def test_prune_reaps_temp_and_old_formats(self, cache):
        cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
        [path] = _artifact_files(cache)
        (path.parent / ".tmp-1-dead").write_bytes(b"orphan")
        stale = cache.directory / "v0" / "ns" / "old.pkl"
        stale.parent.mkdir(parents=True)
        stale.write_bytes(b"stale format")
        assert prune(cache.directory)["removed"] == 2
        assert _artifact_files(cache) == [path]

    def test_clear_removes_everything(self, cache):
        cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
        clear(cache.directory)
        assert directory_stats(cache.directory)["total_entries"] == 0

    def test_cli_stats_prune_clear(self, cache, capsys):
        from repro.cli import main

        cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
        root = str(cache.directory)
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "1 artifacts" in out and "ns" in out
        assert main(["cache", "prune", "--cache-dir", root,
                     "--max-age-days", "30"]) == 0
        assert main(["cache", "clear", "--cache-dir", root]) == 0
        assert "removed 1 artifacts" in capsys.readouterr().out
        assert directory_stats(root)["total_entries"] == 0

    def test_cli_stats_respects_env_dir(self, cache, capsys,
                                        monkeypatch):
        from repro.cli import main

        monkeypatch.setenv(CACHE_DIR_ENV, str(cache.directory))
        assert main(["cache", "stats"]) == 0
        assert str(cache.directory) in capsys.readouterr().out


# -- observability -------------------------------------------------------


class TestObservability:
    def test_counters_and_prometheus_export(self, cache):
        with observed() as registry:
            cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
            cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
            snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["cache.requests"] == 2
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.memory_hits"] == 1
        assert counters["cache.writes"] == 1
        text = to_prometheus(snapshot)
        assert "repro_cache_hits 1" in text
        assert "repro_cache_misses 1" in text
        assert "repro_cache_load_seconds" in text

    def test_error_counter_on_corruption(self, cache):
        with observed() as registry:
            cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
            cache.clear_memory()
            [path] = _artifact_files(cache)
            path.write_bytes(b"junk")
            cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
            counters = registry.snapshot()["counters"]
        assert counters["cache.errors"] == 1
        assert counters["cache.misses"] == 2

    def test_stats_hit_rate(self, cache):
        assert cache.stats.hit_rate == 0.0
        cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
        cache.get_or_compute("ns", 1, {"k": 1}, lambda: 1)
        assert cache.stats.hit_rate == pytest.approx(0.5)


# -- wiring into the simulation cold paths -------------------------------


class TestWiring:
    def test_contact_map_round_trips_through_cache(self, tmp_path):
        from repro.mechanics.contact import ContactMap

        design = default_sensor_design()
        with temporary_cache(tmp_path) as cache:
            cold = ContactMap(design.contact_solver(nodes=81),
                              force_points=5, location_points=5)
            assert cache.stats.misses == 1
            warm = ContactMap(design.contact_solver(nodes=81),
                              force_points=5, location_points=5)
            assert cache.stats.hits == 1
        np.testing.assert_array_equal(cold._left, warm._left)
        np.testing.assert_array_equal(cold._right, warm._right)

    def test_contact_map_bit_identical_without_cache(self, tmp_path,
                                                     monkeypatch):
        from repro.mechanics.contact import ContactMap

        design = default_sensor_design()
        with temporary_cache(tmp_path):
            cached = ContactMap(design.contact_solver(nodes=81),
                                force_points=5, location_points=5)
            cached = ContactMap(design.contact_solver(nodes=81),
                                force_points=5, location_points=5)
        monkeypatch.setenv(CACHE_ENV, "0")
        bare = ContactMap(design.contact_solver(nodes=81),
                          force_points=5, location_points=5)
        np.testing.assert_array_equal(cached._left, bare._left)
        np.testing.assert_array_equal(cached._right, bare._right)

    def test_calibration_round_trips_through_cache(self, tmp_path):
        from repro.core.calibration import calibrate_harmonic_observable
        from repro.sensor.tag import WiForceTag
        from repro.sensor.transduction import ForceTransducer

        design = default_sensor_design()
        locations = (0.02, 0.04, 0.06)
        forces = np.linspace(0.5, 8.0, 6)

        def build():
            tag = WiForceTag(ForceTransducer(design, force_points=6,
                                             location_points=7))
            return calibrate_harmonic_observable(tag, 900e6, locations,
                                                 forces)

        with temporary_cache(tmp_path) as cache:
            cold = build()
            assert cache.stats.misses == 2  # tables + calibration
            warm = build()
            assert cache.stats.misses == 2
        assert cold.to_dict() == warm.to_dict()

    def test_calibration_bit_identical_without_cache(self, tmp_path,
                                                     monkeypatch):
        from repro.core.calibration import calibrate_harmonic_observable
        from repro.sensor.tag import WiForceTag
        from repro.sensor.transduction import ForceTransducer

        design = default_sensor_design()
        locations = (0.02, 0.04, 0.06)
        forces = np.linspace(0.5, 8.0, 6)

        def build():
            tag = WiForceTag(ForceTransducer(design, force_points=6,
                                             location_points=7))
            return calibrate_harmonic_observable(tag, 900e6, locations,
                                                 forces)

        with temporary_cache(tmp_path):
            cached = build()
            cached = build()
        monkeypatch.setenv(CACHE_ENV, "0")
        assert cached.to_dict() == build().to_dict()

    def test_artifacts_shared_across_processes(self, tmp_path):
        """A child process with the same spec starts disk-warm."""
        import json

        import repro

        script = (
            "import json\n"
            "from repro.cache import get_cache\n"
            "from repro.mechanics.contact import ContactMap\n"
            "from repro.sensor.geometry import default_sensor_design\n"
            "design = default_sensor_design()\n"
            "ContactMap(design.contact_solver(nodes=81),\n"
            "           force_points=5, location_points=5)\n"
            "print(json.dumps(get_cache().stats.as_dict()))\n"
        )
        source_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path),
                   PYTHONPATH=source_root)
        runs = []
        for _ in range(2):
            proc = subprocess.run([sys.executable, "-c", script],
                                  capture_output=True, text=True,
                                  env=env, check=True)
            runs.append(json.loads(proc.stdout))
        assert runs[0]["misses"] == 1 and runs[0]["writes"] == 1
        assert runs[1]["disk_hits"] == 1 and runs[1]["misses"] == 0
