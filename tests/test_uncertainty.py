"""Reading-uncertainty propagation tests."""

import numpy as np
import pytest

from repro.core.calibration import harmonic_differential_phases
from repro.core.estimator import ForceLocationEstimate, ForceLocationEstimator
from repro.core.uncertainty import (
    model_jacobian,
    phase_std_from_snr,
    reading_uncertainty,
)
from repro.errors import EstimationError


def touched(force, location):
    return ForceLocationEstimate(force=force, location=location,
                                 residual=0.0, touched=True)


class TestPhaseStdFromSnr:
    def test_high_snr_small_std(self):
        assert phase_std_from_snr(40.0) < 0.01

    def test_formula(self):
        assert phase_std_from_snr(20.0) == pytest.approx(
            1.0 / np.sqrt(200.0))

    def test_infinite_snr(self):
        assert phase_std_from_snr(float("inf")) == 0.0


class TestJacobian:
    def test_shape_and_signs(self, model_900):
        jacobian = model_jacobian(model_900, 3.0, 0.040)
        assert jacobian.shape == (2, 2)
        # More force rotates both phases the same way at the centre.
        assert np.sign(jacobian[0, 0]) == np.sign(jacobian[1, 0])
        # Moving the press toward port 2 moves the two phases in
        # opposite directions.
        assert np.sign(jacobian[0, 1]) != np.sign(jacobian[1, 1])

    def test_force_sensitivity_drops_at_high_force(self, model_900):
        """The saturation regime: less phase per newton."""
        low = model_jacobian(model_900, 1.5, 0.040)
        high = model_jacobian(model_900, 7.5, 0.040)
        assert abs(high[0, 0]) < abs(low[0, 0])

    def test_boundary_pin_rejected(self, model_900):
        low, high = model_900.force_range
        with pytest.raises(EstimationError):
            model_jacobian(model_900, high + 10.0, 0.040,
                           force_step=1e-9)


class TestReadingUncertainty:
    def test_reasonable_magnitudes(self, model_900):
        result = reading_uncertainty(model_900, touched(3.0, 0.040),
                                     phase_std_rad=np.radians(0.5))
        # 0.5 deg of phase noise should map to sub-newton, sub-mm bars
        # (the paper's operating point).
        assert 0.0 < result.force_std < 1.0
        assert 0.0 < result.location_std < 2e-3

    def test_scales_linearly_with_phase_noise(self, model_900):
        small = reading_uncertainty(model_900, touched(3.0, 0.040),
                                    np.radians(0.25))
        large = reading_uncertainty(model_900, touched(3.0, 0.040),
                                    np.radians(1.0))
        assert large.force_std == pytest.approx(4 * small.force_std,
                                                rel=1e-6)

    def test_high_force_bars_wider(self, model_900):
        """Same phase noise costs more newtons in the saturating
        regime — the error structure seen in the accuracy CDFs."""
        mid = reading_uncertainty(model_900, touched(2.0, 0.040),
                                  np.radians(0.5))
        high = reading_uncertainty(model_900, touched(7.5, 0.040),
                                   np.radians(0.5))
        assert high.force_std > mid.force_std

    def test_interval_clipped_at_zero(self, model_900):
        result = reading_uncertainty(model_900, touched(0.8, 0.040),
                                     np.radians(2.0))
        low, high = result.force_interval(touched(0.8, 0.040), sigmas=3.0)
        assert low >= 0.0
        assert high > 0.8

    def test_untouched_rejected(self, model_900):
        estimate = ForceLocationEstimate(0.0, 0.0, 0.0, touched=False)
        with pytest.raises(EstimationError):
            reading_uncertainty(model_900, estimate, 0.01)

    def test_negative_phase_std_rejected(self, model_900):
        with pytest.raises(EstimationError):
            reading_uncertainty(model_900, touched(3.0, 0.040), -0.1)

    def test_consistency_with_monte_carlo(self, model_900, tag):
        """The propagated sigma matches the scatter of noisy
        inversions — the error bars mean what they claim."""
        rng = np.random.default_rng(17)
        estimator = ForceLocationEstimator(model_900)
        truth = harmonic_differential_phases(tag, 900e6, 3.0, 0.040)
        sigma = np.radians(0.8)
        forces = []
        for _ in range(80):
            phi1 = truth[0] + rng.normal(0.0, sigma)
            phi2 = truth[1] + rng.normal(0.0, sigma)
            forces.append(estimator.invert(phi1, phi2).force)
        empirical = float(np.std(forces))
        predicted = reading_uncertainty(
            model_900, touched(3.0, 0.040), sigma).force_std
        assert empirical == pytest.approx(predicted, rel=0.5)
