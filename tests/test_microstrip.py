"""Microstrip model tests (paper section 4.1 / Appendix / Fig. 19)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.microstrip import (
    MicrostripLine,
    air_microstrip_impedance,
    synthesize_ratio_for_impedance,
    wide_ground_effective_width,
)
from repro.units import SPEED_OF_LIGHT


class TestImpedanceFormula:
    def test_narrower_trace_higher_impedance(self):
        assert (air_microstrip_impedance(1e-3, 1e-3)
                > air_microstrip_impedance(1e-3, 5e-3))

    def test_taller_line_higher_impedance(self):
        assert (air_microstrip_impedance(2e-3, 2e-3)
                > air_microstrip_impedance(1e-3, 2e-3))

    def test_five_to_one_near_fifty_ohm(self):
        """The Appendix claim: w/h ~ 5 gives ~50 ohm for an air line."""
        impedance = air_microstrip_impedance(1e-3, 4.9e-3)
        assert impedance == pytest.approx(50.0, abs=1.0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ConfigurationError):
            air_microstrip_impedance(0.0, 1e-3)
        with pytest.raises(ConfigurationError):
            air_microstrip_impedance(1e-3, -1e-3)


class TestWideGround:
    def test_wide_ground_widens_effective_trace(self):
        effective = wide_ground_effective_width(2.5e-3, 0.63e-3, 6e-3)
        assert effective > 2.5e-3

    def test_no_overhang_no_widening(self):
        effective = wide_ground_effective_width(2.5e-3, 0.63e-3, 2.5e-3)
        assert effective == pytest.approx(2.5e-3)

    def test_widening_saturates(self):
        wide = wide_ground_effective_width(2.5e-3, 0.63e-3, 10e-3)
        wider = wide_ground_effective_width(2.5e-3, 0.63e-3, 100e-3)
        assert wider - wide < 0.05e-3

    def test_rejects_ground_narrower_than_trace(self):
        with pytest.raises(ConfigurationError):
            wide_ground_effective_width(2.5e-3, 0.63e-3, 1e-3)


class TestRatioSynthesis:
    def test_narrow_ground_ratio_near_five(self):
        """Fig. 19 / Appendix: ideal ratio ~5:1 with narrow ground."""
        ratio = synthesize_ratio_for_impedance(50.0, 1.0)
        assert ratio == pytest.approx(5.0, abs=0.4)

    def test_wide_ground_ratio_near_four(self):
        """Fig. 19: ratio shifts to ~4:1 once the ground is widened."""
        ratio = synthesize_ratio_for_impedance(50.0, 2.4)
        assert ratio == pytest.approx(4.0, abs=0.4)

    def test_synthesis_inverts_analysis(self):
        height = 0.63e-3
        ratio = synthesize_ratio_for_impedance(60.0, 1.0, height)
        width = ratio * height
        assert air_microstrip_impedance(
            height, wide_ground_effective_width(width, height, width)
        ) == pytest.approx(60.0, abs=0.01)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ConfigurationError):
            synthesize_ratio_for_impedance(0.0)

    def test_rejects_ratio_below_one(self):
        with pytest.raises(ConfigurationError):
            synthesize_ratio_for_impedance(50.0, 0.5)


class TestMicrostripLine:
    def test_prototype_impedance_near_fifty(self, line):
        """The paper's 2.5 mm / 6 mm / 0.63 mm prototype is ~50 ohm."""
        assert line.characteristic_impedance == pytest.approx(50.0, abs=2.0)

    def test_air_substrate_velocity_is_c(self, line):
        assert line.phase_velocity == pytest.approx(SPEED_OF_LIGHT)

    def test_phase_constant_formula(self, line):
        beta = line.phase_constant(900e6)
        assert beta == pytest.approx(2 * np.pi * 900e6 / SPEED_OF_LIGHT)

    def test_phase_constant_vectorized(self, line):
        beta = line.phase_constant(np.array([900e6, 2.4e9]))
        assert beta.shape == (2,)
        assert beta[1] > beta[0]

    def test_round_trip_phase_doubles_one_way(self, line):
        one_way = line.phase_constant(2.4e9) * 0.02
        assert line.round_trip_phase(2.4e9, 0.02) == pytest.approx(2 * one_way)

    def test_phase_sensitivity_at_2_4ghz(self, line):
        """~5.8 deg of round-trip phase per mm of shorting-point shift."""
        per_mm = np.degrees(line.round_trip_phase(2.4e9, 1e-3))
        assert per_mm == pytest.approx(5.76, abs=0.1)

    def test_loss_grows_with_frequency(self, line):
        assert (line.attenuation_constant(2.4e9)
                > line.attenuation_constant(900e6))

    def test_loss_small_over_sensor_length(self, line):
        # The 80 mm air line loses well under 1 dB at 3 GHz.
        nepers = float(line.attenuation_constant(3e9)) * line.length
        assert nepers * 8.686 < 1.0

    def test_propagation_constant_combines(self, line):
        gamma = line.propagation_constant(900e6)
        assert gamma.real == pytest.approx(
            float(line.attenuation_constant(900e6)))
        assert gamma.imag == pytest.approx(float(line.phase_constant(900e6)))

    def test_electrical_length(self, line):
        expected = float(line.phase_constant(900e6)) * 0.08
        assert line.electrical_length(900e6) == pytest.approx(expected)

    def test_rejects_ground_narrower_than_trace(self):
        with pytest.raises(ConfigurationError):
            MicrostripLine(width=5e-3, ground_width=2e-3)

    def test_rejects_nonpositive_dimension(self):
        with pytest.raises(ConfigurationError):
            MicrostripLine(height=0.0)
