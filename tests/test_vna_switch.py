"""VNA simulator and RF switch model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.elements import line_twoport
from repro.rf.switch import ABSORPTIVE_SWITCH, HMC544AE, RFSwitch
from repro.rf.vna import VNA


def line_dut(line):
    def device(frequency):
        return line_twoport(line, frequency).s
    return device


class TestVNA:
    def test_sweep_grid(self):
        vna = VNA(start_frequency=1e8, stop_frequency=1e9, points=10)
        assert vna.frequency[0] == 1e8
        assert vna.frequency[-1] == 1e9
        assert vna.frequency.size == 10

    def test_measure_shape(self, line, rng):
        vna = VNA(points=51, rng=rng)
        s = vna.measure(line_dut(line))
        assert s.shape == (51, 2, 2)

    def test_noiseless_measurement_exact(self, line):
        vna = VNA(points=21, trace_noise_std=0.0)
        s = vna.measure(line_dut(line))
        expected = line_twoport(line, vna.frequency).s
        np.testing.assert_allclose(s, expected)

    def test_noise_level(self, line, rng):
        vna = VNA(points=401, trace_noise_std=1e-3, rng=rng)
        s = vna.measure(line_dut(line))
        clean = line_twoport(line, vna.frequency).s
        residual = (s - clean).ravel()
        assert np.std(residual.real) == pytest.approx(1e-3, rel=0.2)

    def test_cable_adds_linear_phase(self, line):
        bare = VNA(points=11, trace_noise_std=0.0)
        cabled = VNA(points=11, trace_noise_std=0.0, cable_length=0.1)
        s_bare = bare.measure(line_dut(line))
        s_cabled = cabled.measure(line_dut(line))
        ratio = s_cabled[:, 1, 0] / s_bare[:, 1, 0]
        phases = np.unwrap(np.angle(ratio))
        slopes = np.diff(phases)
        np.testing.assert_allclose(slopes, slopes[0], atol=1e-9)

    def test_trace_selection(self, line, rng):
        vna = VNA(points=21, rng=rng)
        trace = vna.trace(line_dut(line), "s21")
        assert trace.values.shape == (21,)
        assert np.all(trace.magnitude_db < 0.1)

    def test_trace_rejects_unknown_parameter(self, line, rng):
        vna = VNA(points=21, rng=rng)
        with pytest.raises(ConfigurationError):
            vna.trace(line_dut(line), "s31")

    def test_group_delay_matches_length(self, line):
        vna = VNA(start_frequency=5e8, stop_frequency=3e9, points=201,
                  trace_noise_std=0.0)
        trace = vna.trace(line_dut(line), "s21")
        delay = trace.group_delay().mean()
        assert delay == pytest.approx(line.length / 3e8, rel=0.02)

    def test_rejects_bad_sweep(self):
        with pytest.raises(ConfigurationError):
            VNA(start_frequency=2e9, stop_frequency=1e9)

    def test_rejects_bad_dut_shape(self, rng):
        vna = VNA(points=5, rng=rng)
        with pytest.raises(ConfigurationError):
            vna.measure(lambda f: np.zeros((3, 2, 2)))


class TestRFSwitch:
    def test_hmc544_is_reflective(self):
        assert HMC544AE.is_reflective

    def test_absorptive_is_not(self):
        assert not ABSORPTIVE_SWITCH.is_reflective

    def test_off_reflection_magnitude(self):
        assert abs(HMC544AE.off_reflection) == pytest.approx(0.95)

    def test_branch_off_reflection_small(self):
        assert abs(HMC544AE.branch_off_reflection) == pytest.approx(
            10 ** (-30.0 / 20.0))

    def test_through_gain_from_insertion_loss(self):
        switch = RFSwitch(insertion_loss_db=6.0)
        assert switch.through_gain == pytest.approx(0.501, rel=1e-3)

    def test_max_toggle_frequency(self):
        switch = RFSwitch(switching_time=100e-9)
        assert switch.max_toggle_frequency(0.01) == pytest.approx(50e3)

    def test_kilohertz_clocks_feasible(self):
        """The paper's 1-2 kHz clocks are far below the switch limit."""
        assert HMC544AE.max_toggle_frequency() > 10e3

    def test_rejects_negative_insertion_loss(self):
        with pytest.raises(ConfigurationError):
            RFSwitch(insertion_loss_db=-1.0)

    def test_rejects_bad_off_magnitude(self):
        with pytest.raises(ConfigurationError):
            RFSwitch(off_reflection_magnitude=1.5)

    def test_rejects_bad_settle_fraction(self):
        with pytest.raises(ConfigurationError):
            RFSwitch().max_toggle_frequency(settle_fraction=2.0)
