"""Micro-batch scheduler: coalescing, deadlines, backpressure,
graceful degradation."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.estimator import ForceLocationEstimator
from repro.errors import QueueFullError, ServeError
from repro.serve.scheduler import BatchPolicy, MicroBatchScheduler
from repro.serve.telemetry import MemorySink, Telemetry


@pytest.fixture(scope="module")
def estimator(model_900):
    return ForceLocationEstimator(model_900)


@pytest.fixture(scope="module")
def press_phases(model_900):
    """Six well-separated touched phase pairs inside the envelope."""
    forces = np.array([1.0, 2.5, 4.0, 5.5, 7.0, 8.0])
    locations = np.linspace(0.022, 0.058, forces.size)
    phi1, phi2 = model_900.predict_batch(forces, locations)
    return list(zip(phi1.tolist(), phi2.tolist()))


class _ExplodingBatcher:
    """Estimator facade whose batch path always raises."""

    def __init__(self, estimator):
        self._estimator = estimator
        self.model = estimator.model

    def invert_batch(self, phi1, phi2, location_hint=None):
        raise RuntimeError("batcher down")

    def invert(self, phi1, phi2, location_hint=None):
        return self._estimator.invert(phi1, phi2,
                                      location_hint=location_hint)


class TestPolicy:
    def test_rejects_invalid_knobs(self):
        with pytest.raises(ServeError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ServeError):
            BatchPolicy(max_delay_s=-0.1)
        with pytest.raises(ServeError):
            BatchPolicy(max_queue=0)


class TestCoalescing:
    def test_size_flush_coalesces_concurrent_requests(self, estimator,
                                                      press_phases):
        scheduler = MicroBatchScheduler(BatchPolicy(max_batch=4,
                                                    max_delay_s=10.0))

        async def drive():
            return await asyncio.gather(*(
                scheduler.submit(estimator, phi1, phi2)
                for phi1, phi2 in press_phases[:4]))

        results = asyncio.run(drive())
        assert [r.batch_size for r in results] == [4, 4, 4, 4]
        counters = scheduler.telemetry.snapshot()["counters"]
        assert counters["serve.batches"] == 1
        assert counters["serve.requests"] == 4
        assert scheduler.pending == 0

    def test_batched_results_match_scalar(self, estimator, press_phases):
        scheduler = MicroBatchScheduler(BatchPolicy(max_batch=6,
                                                    max_delay_s=10.0))

        async def drive():
            return await asyncio.gather(*(
                scheduler.submit(estimator, phi1, phi2)
                for phi1, phi2 in press_phases))

        results = asyncio.run(drive())
        for (phi1, phi2), result in zip(press_phases, results):
            expected = estimator.invert(phi1, phi2)
            assert result.estimate == expected

    def test_deadline_flush(self, estimator, press_phases):
        scheduler = MicroBatchScheduler(BatchPolicy(max_batch=64,
                                                    max_delay_s=0.01))

        async def drive():
            return await asyncio.gather(*(
                scheduler.submit(estimator, phi1, phi2)
                for phi1, phi2 in press_phases[:2]))

        results = asyncio.run(drive())
        # Never reached max_batch, so the deadline flushed both as one.
        assert [r.batch_size for r in results] == [2, 2]
        assert all(r.queue_seconds >= 0.0 for r in results)

    def test_mixed_hints_match_scalar(self, estimator, press_phases):
        scheduler = MicroBatchScheduler(BatchPolicy(max_batch=4,
                                                    max_delay_s=10.0))
        hints = [None, 0.03, None, 0.05]

        async def drive():
            return await asyncio.gather(*(
                scheduler.submit(estimator, phi1, phi2,
                                 location_hint=hint)
                for (phi1, phi2), hint in zip(press_phases[:4], hints)))

        results = asyncio.run(drive())
        for (phi1, phi2), hint, result in zip(press_phases, hints,
                                              results):
            expected = estimator.invert(phi1, phi2, location_hint=hint)
            assert result.estimate == expected

    def test_group_key_estimator_conflict(self, estimator, model_900,
                                          press_phases):
        scheduler = MicroBatchScheduler(BatchPolicy(max_batch=8,
                                                    max_delay_s=10.0))
        other = ForceLocationEstimator(model_900, touch_threshold_deg=9.0)
        phi1, phi2 = press_phases[0]

        async def drive():
            first = asyncio.ensure_future(
                scheduler.submit(estimator, phi1, phi2, key="shared"))
            await asyncio.sleep(0)
            with pytest.raises(ServeError):
                await scheduler.submit(other, phi1, phi2, key="shared")
            scheduler.flush_all()
            await first

        asyncio.run(drive())


class TestBackpressure:
    def test_queue_full_rejects(self, estimator, press_phases):
        scheduler = MicroBatchScheduler(BatchPolicy(max_batch=64,
                                                    max_delay_s=10.0,
                                                    max_queue=2))

        async def drive():
            tasks = [asyncio.ensure_future(
                scheduler.submit(estimator, phi1, phi2))
                for phi1, phi2 in press_phases[:2]]
            await asyncio.sleep(0)
            with pytest.raises(QueueFullError):
                await scheduler.submit(estimator, *press_phases[2])
            scheduler.flush_all()
            return await asyncio.gather(*tasks)

        results = asyncio.run(drive())
        assert len(results) == 2
        counters = scheduler.telemetry.snapshot()["counters"]
        assert counters["serve.rejected"] == 1


class TestDegradation:
    def test_disabled_batching_runs_scalar_path(self, estimator,
                                                press_phases):
        scheduler = MicroBatchScheduler(BatchPolicy(enabled=False))

        async def drive():
            return [await scheduler.submit(estimator, phi1, phi2)
                    for phi1, phi2 in press_phases[:3]]

        results = asyncio.run(drive())
        assert [r.batch_size for r in results] == [1, 1, 1]
        counters = scheduler.telemetry.snapshot()["counters"]
        assert counters["serve.scalar_direct"] == 3
        for (phi1, phi2), result in zip(press_phases, results):
            assert result.estimate == estimator.invert(phi1, phi2)

    def test_batcher_error_falls_back_to_scalar(self, estimator,
                                                press_phases):
        sink = MemorySink()
        scheduler = MicroBatchScheduler(
            BatchPolicy(max_batch=3, max_delay_s=10.0),
            telemetry=Telemetry(sink))
        broken = _ExplodingBatcher(estimator)

        async def drive():
            return await asyncio.gather(*(
                scheduler.submit(broken, phi1, phi2)
                for phi1, phi2 in press_phases[:3]))

        results = asyncio.run(drive())
        counters = scheduler.telemetry.snapshot()["counters"]
        assert counters["serve.batch_fallbacks"] == 1
        for (phi1, phi2), result in zip(press_phases, results):
            assert result.batch_size == 1
            assert result.estimate == estimator.invert(phi1, phi2)
        # The flush span recorded the fallback.
        flush_events = [e for e in sink.events if e["span"] == "serve.flush"]
        assert flush_events and flush_events[0]["fallback"] == "RuntimeError"
